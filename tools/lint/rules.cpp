// Per-file token rules. Cross-file coverage rules live in coverage.cpp; the
// registry at the bottom of this file stitches both sets together.
#include <algorithm>
#include <array>
#include <string_view>

#include "lint.h"

namespace gvfs::lint {

namespace {

bool Is(const Token& t, std::string_view text) { return t.text == text; }

bool IsIdent(const Token& t, std::string_view text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

bool AnyOf(const Token& t, std::initializer_list<std::string_view> names) {
  if (t.kind != TokKind::kIdent) return false;
  return std::any_of(names.begin(), names.end(),
                     [&](std::string_view n) { return t.text == n; });
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

void Add(std::vector<Finding>& out, const FileUnit& unit, const char* rule,
         int line, std::string message) {
  out.push_back({rule, unit.rel_path, line, std::move(message)});
}

// ---------------------------------------------------------------------------
// Determinism rules
// ---------------------------------------------------------------------------

/// wall-clock: any read of real time. Simulation time comes exclusively from
/// sim::Scheduler::Now(); a wall-clock read anywhere in the tree makes runs
/// non-reproducible (and sampler-determinism tests flaky).
void CheckWallClock(const FileUnit& unit, std::vector<Finding>& out) {
  const auto& toks = unit.lex.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (AnyOf(t, {"gettimeofday", "clock_gettime", "localtime", "gmtime",
                  "ftime", "timespec_get"})) {
      Add(out, unit, "wall-clock", t.line,
          "'" + t.text + "' reads the wall clock; use the simulation clock "
          "(sim::Scheduler::Now)");
      continue;
    }
    // std::chrono clocks: `steady_clock::now`, `system_clock::now`, ...
    if (t.kind == TokKind::kIdent && EndsWith(t.text, "_clock") &&
        i + 2 < toks.size() && Is(toks[i + 1], "::") &&
        IsIdent(toks[i + 2], "now")) {
      Add(out, unit, "wall-clock", t.line,
          "'" + t.text + "::now' reads the wall clock; use the simulation "
          "clock (sim::Scheduler::Now)");
      continue;
    }
    // C `time(...)`: only the whole identifier followed by a call.
    if (IsIdent(t, "time") && i + 1 < toks.size() && Is(toks[i + 1], "(")) {
      Add(out, unit, "wall-clock", t.line,
          "'time(' reads the wall clock; use the simulation clock "
          "(sim::Scheduler::Now)");
    }
  }
}

/// ambient-randomness: any RNG that is not gvfs::Rng with an explicit seed.
/// Default-seeded engines and std::random_device give every run a different
/// sequence, which breaks byte-for-byte reproducibility.
void CheckAmbientRandomness(const FileUnit& unit, std::vector<Finding>& out) {
  for (const Token& t : unit.lex.tokens) {
    if (AnyOf(t, {"rand", "srand", "rand_r", "drand48", "random_device",
                  "mt19937", "mt19937_64", "default_random_engine",
                  "minstd_rand", "minstd_rand0", "random_shuffle"})) {
      Add(out, unit, "ambient-randomness", t.line,
          "'" + t.text + "' is ambient randomness; use gvfs::Rng with an "
          "explicit seed (common/rng.h)");
    }
  }
}

/// banned-include: headers whose only use cases are the two rules above.
/// Catching the include keeps the diagnostic at the point of intent.
void CheckBannedInclude(const FileUnit& unit, std::vector<Finding>& out) {
  static constexpr std::array<std::string_view, 5> kBanned = {
      "random", "chrono", "ctime", "time.h", "sys/time.h"};
  for (const IncludeDirective& inc : unit.lex.includes) {
    if (std::find(kBanned.begin(), kBanned.end(), inc.header) != kBanned.end()) {
      Add(out, unit, "banned-include", inc.line,
          "#include <" + inc.header + "> pulls in wall-clock/randomness APIs; "
          "deterministic code uses sim time and common/rng.h");
    }
  }
}

/// unordered-container: hash containers iterate in a seed- and
/// libstdc++-version-dependent order. Any loop over one that reaches an
/// exporter, a trace, or an RPC body de-determinizes output byte order.
void CheckUnorderedContainer(const FileUnit& unit, std::vector<Finding>& out) {
  for (const Token& t : unit.lex.tokens) {
    if (AnyOf(t, {"unordered_map", "unordered_set", "unordered_multimap",
                  "unordered_multiset"})) {
      Add(out, unit, "unordered-container", t.line,
          "'" + t.text + "' iterates in nondeterministic order; use "
          "std::map/std::set, or suppress with a justification that no "
          "iteration order escapes");
    }
  }
}

/// pointer-order: ordering or hashing by pointer value varies with ASLR and
/// allocation history, so any container keyed this way iterates differently
/// run to run even when the code is otherwise deterministic.
void CheckPointerOrder(const FileUnit& unit, std::vector<Finding>& out) {
  const auto& toks = unit.lex.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (AnyOf(t, {"uintptr_t", "intptr_t"})) {
      Add(out, unit, "pointer-order", t.line,
          "'" + t.text + "' converts a pointer to an integer; pointer values "
          "vary run to run — key on stable ids instead");
      continue;
    }
    // std::hash<T*> (or hash<...*...>): scan the template argument list.
    if (IsIdent(t, "hash") && i + 1 < toks.size() && Is(toks[i + 1], "<")) {
      int depth = 0;
      for (std::size_t j = i + 1; j < toks.size() && j < i + 64; ++j) {
        if (Is(toks[j], "<")) ++depth;
        if (Is(toks[j], ">") && --depth == 0) break;
        if (Is(toks[j], ";")) break;  // it was a comparison, not a template
        if (depth >= 1 && Is(toks[j], "*")) {
          Add(out, unit, "pointer-order", t.line,
              "hashing a pointer type; pointer values vary run to run — "
              "hash stable ids instead");
          break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Error-discipline rules (protocol paths only)
// ---------------------------------------------------------------------------

/// throw-in-protocol: the expected.h contract — protocol code returns errors
/// as values; an exception thrown across a coroutine frame unwinds through
/// the scheduler and tears down the simulation.
void CheckThrow(const FileUnit& unit, std::vector<Finding>& out) {
  for (const Token& t : unit.lex.tokens) {
    if (AnyOf(t, {"throw", "rethrow_exception"})) {
      Add(out, unit, "throw-in-protocol", t.line,
          "'" + t.text + "' in a protocol path; return Expected<> instead "
          "(exceptions must not cross coroutine frames)");
    }
  }
}

/// try-in-protocol: a handler that catches is a handler that expects someone
/// below it to throw — same contract violation from the consumer side.
void CheckTry(const FileUnit& unit, std::vector<Finding>& out) {
  for (const Token& t : unit.lex.tokens) {
    if (AnyOf(t, {"try", "catch"})) {
      Add(out, unit, "try-in-protocol", t.line,
          "'" + t.text + "' in a protocol path; errors travel as Expected<> "
          "values, not exceptions");
    }
  }
}

/// discarded-expected: `(void)` on a call result in a protocol path throws
/// away an Expected<> — a swallowed RPC or filesystem error. Plain variable
/// discards (`(void)arg;`) are fine; only discarded *calls* fire.
void CheckDiscardedExpected(const FileUnit& unit, std::vector<Finding>& out) {
  const auto& toks = unit.lex.tokens;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!(Is(toks[i], "(") && IsIdent(toks[i + 1], "void") &&
          Is(toks[i + 2], ")"))) {
      continue;
    }
    int depth = 0;
    for (std::size_t j = i + 3; j < toks.size() && j < i + 256; ++j) {
      if (Is(toks[j], ";") && depth == 0) break;
      if (Is(toks[j], "(")) ++depth;
      if (Is(toks[j], ")")) --depth;
      if (IsIdent(toks[j], "co_await") || Is(toks[j], "(")) {
        Add(out, unit, "discarded-expected", toks[i].line,
            "'(void)' discards a call result in a protocol path; handle the "
            "Expected<> or suppress with a reason");
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Hot-path discipline (src/sim and src/rpc only)
// ---------------------------------------------------------------------------

/// hot-path-type: src/sim runs an event and src/rpc a packet millions of
/// times per benchmark, and both were rebuilt around allocation-free
/// structures (sim::EventFn's inline storage, gvfs::FlatMap, the per-host
/// dispatch vector). A std::function posted per event re-introduces a heap
/// allocation + indirect call per occurrence; a std::map consulted per call
/// re-introduces a pointer chase per packet. Both are banned in these two
/// directories; registration-time or report-ordering uses stay allowed via
/// a reasoned suppression.
void CheckHotPathType(const FileUnit& unit, std::vector<Finding>& out) {
  const auto& toks = unit.lex.tokens;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!(IsIdent(toks[i], "std") && Is(toks[i + 1], "::"))) continue;
    const Token& t = toks[i + 2];
    if (IsIdent(t, "function")) {
      Add(out, unit, "hot-path-type", t.line,
          "'std::function' in an event/packet hot path allocates and "
          "indirects per call; use sim::EventFn (sim/callback.h) or a "
          "concrete callable, or suppress where the type erasure is "
          "registration-time only");
    } else if (IsIdent(t, "map")) {
      Add(out, unit, "hot-path-type", t.line,
          "'std::map' in an event/packet hot path costs a pointer chase per "
          "lookup; use gvfs::FlatMap (common/flat_map.h) or a flat vector, "
          "or suppress where ordered iteration is load-bearing");
    }
  }
}

// ---------------------------------------------------------------------------
// Suppression hygiene
// ---------------------------------------------------------------------------

/// bad-suppression: an allow() with no reason, or naming a rule that does
/// not exist (usually a typo that silently suppresses nothing).
void CheckBadSuppression(const FileUnit& unit, std::vector<Finding>& out) {
  for (const Suppression& s : unit.suppressions) {
    if (s.reason.empty()) {
      Add(out, unit, "bad-suppression", s.line,
          "suppression without a reason; write "
          "'gvfs-lint: allow(<rule>): <why>'");
    }
    for (const std::string& rule : s.rules) {
      if (!IsKnownRule(rule)) {
        Add(out, unit, "bad-suppression", s.line,
            "suppression names unknown rule '" + rule + "'");
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Scopes
// ---------------------------------------------------------------------------

bool InProtocolDirs(const std::string& rel_path) {
  return StartsWith(rel_path, "src/gvfs/") || StartsWith(rel_path, "src/rpc/") ||
         StartsWith(rel_path, "src/nfs3/") || StartsWith(rel_path, "src/sim/") ||
         StartsWith(rel_path, "src/fleet/") ||
         StartsWith(rel_path, "src/policy/");
}

bool InSrc(const std::string& rel_path) { return StartsWith(rel_path, "src/"); }

bool InSrcOrBench(const std::string& rel_path) {
  return StartsWith(rel_path, "src/") || StartsWith(rel_path, "bench/");
}

bool InHotPathDirs(const std::string& rel_path) {
  return StartsWith(rel_path, "src/sim/") || StartsWith(rel_path, "src/rpc/");
}

namespace {

bool NotRngHeader(const std::string& rel_path) {
  return rel_path != "src/common/rng.h";
}

}  // namespace

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

// Defined in coverage.cpp.
void CheckProcCoverage(const Tree& tree, std::vector<Finding>& out);
void CheckStatsNameCoverage(const Tree& tree, std::vector<Finding>& out);
void CheckInvCoverage(const Tree& tree, std::vector<Finding>& out);
void CheckMigrateCoverage(const Tree& tree, std::vector<Finding>& out);
void CheckTraceCoverage(const Tree& tree, std::vector<Finding>& out);
void CheckAnomalyCoverage(const Tree& tree, std::vector<Finding>& out);

// Defined in dataflow.cpp (the gvfs-analyze suspend-safety pass).
void CheckUseAfterSuspend(const FileUnit& unit, std::vector<Finding>& out);
void CheckIterAfterSuspend(const FileUnit& unit, std::vector<Finding>& out);
void CheckLockAcrossSuspend(const FileUnit& unit, std::vector<Finding>& out);
void CheckDetachedTask(const Tree& tree, std::vector<Finding>& out);

const std::vector<RuleInfo>& AllRules() {
  static const std::vector<RuleInfo> kRules = {
      {"wall-clock",
       "Wall-clock reads break deterministic simulation; use sim time",
       CheckWallClock, nullptr, nullptr},
      {"ambient-randomness",
       "Unseeded/ambient RNGs break reproducibility; use gvfs::Rng",
       CheckAmbientRandomness, nullptr, NotRngHeader},
      {"banned-include",
       "<random>/<chrono>/<ctime> pull in nondeterministic APIs",
       CheckBannedInclude, nullptr, NotRngHeader},
      {"unordered-container",
       "Hash containers iterate in nondeterministic order",
       CheckUnorderedContainer, nullptr, InSrcOrBench},
      {"pointer-order",
       "Ordering/hashing by pointer value varies run to run",
       CheckPointerOrder, nullptr, InSrcOrBench},
      {"throw-in-protocol",
       "Protocol paths return Expected<>; exceptions must not cross "
       "coroutine frames",
       CheckThrow, nullptr, InProtocolDirs},
      {"try-in-protocol",
       "Protocol paths consume Expected<>; try/catch violates the contract",
       CheckTry, nullptr, InProtocolDirs},
      {"discarded-expected",
       "(void)-discarding a call result swallows protocol errors",
       CheckDiscardedExpected, nullptr, InProtocolDirs},
      {"hot-path-type",
       "std::function/std::map in sim/rpc hot paths; use EventFn/FlatMap",
       CheckHotPathType, nullptr, InHotPathDirs},
      {"bad-suppression",
       "Suppressions must name real rules and give a reason",
       CheckBadSuppression, nullptr, nullptr},
      {"proc-coverage",
       "Every NFS/GVFS proc needs a registered handler and a Classify case",
       nullptr, CheckProcCoverage, nullptr},
      {"stats-name-coverage",
       "Every NFS/GVFS proc needs a ProcName/GvfsProcName entry",
       nullptr, CheckStatsNameCoverage, nullptr},
      {"inv-coverage",
       "Mutating procs and the aggregation tier must append invalidation "
       "entries",
       nullptr, CheckInvCoverage, nullptr},
      {"migrate-coverage",
       "The MIGRATE handshake must drain invalidations and recall conflicts "
       "before switching modes",
       nullptr, CheckMigrateCoverage, nullptr},
      {"trace-coverage",
       "Invalidation appends must be traced; every EventType needs a name",
       nullptr, CheckTraceCoverage, nullptr},
      {"anomaly-coverage",
       "Every AnomalyKind needs a kDetectors entry, a wire name, and a "
       "doctor remedy",
       nullptr, CheckAnomalyCoverage, nullptr},
      {"use-after-suspend",
       "Reference-like values created before a co_await and used after it "
       "may dangle; copy before suspending or re-acquire after",
       CheckUseAfterSuspend, nullptr, InSrc},
      {"iter-after-suspend",
       "Iterators held across a suspend point are invalidated if the "
       "container mutates while the frame is parked",
       CheckIterAfterSuspend, nullptr, InSrc},
      {"lock-across-suspend",
       "A sim::Mutex/Semaphore held across a later co_await serializes "
       "every peer for the whole await",
       CheckLockAcrossSuspend, nullptr, InSrc},
      {"detached-task",
       "Discarding a Task-returning call drops a lazy coroutine that will "
       "never run",
       nullptr, CheckDetachedTask, nullptr},
  };
  return kRules;
}

bool IsKnownRule(const std::string& id) {
  for (const RuleInfo& rule : AllRules()) {
    if (id == rule.id) return true;
  }
  return false;
}

}  // namespace gvfs::lint
