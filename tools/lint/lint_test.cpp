// Golden-fixture tests for every lint rule, plus lexer/suppression unit
// tests. Per-file rules get three fixtures each under testdata/rules/<id>/:
// fire.cpp (must produce the finding), pass.cpp (must not), suppressed.cpp
// (fires without its annotation, silenced by a reasoned allow). Cross-file
// rules get a complete mini-tree (testdata/coverage/ok) plus seeded
// violations (testdata/coverage/variants/*) overlaid on it — including the
// canonical regression: a RecordInvalidation with the buffer append removed.
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.h"

namespace gvfs::lint {
namespace {

namespace fs = std::filesystem;

const fs::path kTestdata = LINT_TESTDATA_DIR;

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

int CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  int n = 0;
  for (const Finding& f : findings) {
    if (f.rule == rule) ++n;
  }
  return n;
}

/// Lints one fixture file as if it lived in the most restrictive scope
/// (src/gvfs/ is inside src/ and inside the protocol dirs, so every
/// per-file rule applies there).
std::vector<Finding> LintFixture(const fs::path& file) {
  Tree tree;
  FileUnit unit = MakeUnit("src/gvfs/fixture.cpp", ReadFile(file));
  tree.emplace(unit.rel_path, std::move(unit));
  return LintTree(tree);
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(Lexer, SkipsCommentsAndStrings) {
  const Lexed lex = Lex(
      "int a; // time(nullptr) in a comment\n"
      "/* rand() in a block\n   comment */\n"
      "const char* s = \"gettimeofday()\";\n"
      "const char* r = R\"(std::mt19937 gen;)\";\n");
  for (const Token& t : lex.tokens) {
    EXPECT_NE(t.text, "time");
    EXPECT_NE(t.text, "rand");
    EXPECT_NE(t.text, "gettimeofday");
    EXPECT_NE(t.text, "mt19937");
  }
  ASSERT_EQ(lex.comments.size(), 2u);
  EXPECT_EQ(lex.comments[0].line, 1);
  EXPECT_EQ(lex.comments[1].line, 2);
}

TEST(Lexer, WholeIdentifiersOnly) {
  const Lexed lex = Lex("void ObserveMtime(int mtime);\n");
  bool saw_observe = false;
  for (const Token& t : lex.tokens) {
    EXPECT_NE(t.text, "time");
    if (t.text == "ObserveMtime") saw_observe = true;
  }
  EXPECT_TRUE(saw_observe);
}

TEST(Lexer, RecordsIncludesAndLines) {
  const Lexed lex = Lex(
      "#include <chrono>\n"
      "#include \"common/rng.h\"\n"
      "int x;\n");
  ASSERT_EQ(lex.includes.size(), 2u);
  EXPECT_EQ(lex.includes[0].header, "chrono");
  EXPECT_TRUE(lex.includes[0].angled);
  EXPECT_EQ(lex.includes[0].line, 1);
  EXPECT_EQ(lex.includes[1].header, "common/rng.h");
  EXPECT_FALSE(lex.includes[1].angled);
  ASSERT_FALSE(lex.tokens.empty());
  EXPECT_EQ(lex.tokens.front().line, 3);
}

TEST(Lexer, TokenizesMacroBodies) {
  const Lexed lex = Lex("#define NOW() time(nullptr)\n");
  bool saw_time = false;
  for (const Token& t : lex.tokens) {
    if (t.text == "time") saw_time = true;
  }
  EXPECT_TRUE(saw_time);
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

TEST(Suppressions, ParsesRulesAndReason) {
  const Lexed lex =
      Lex("// gvfs-lint: allow(wall-clock, unordered-container): benchmarking "
          "harness, order never escapes\n");
  const auto sups = ParseSuppressions(lex);
  ASSERT_EQ(sups.size(), 1u);
  EXPECT_EQ(sups[0].rules,
            (std::vector<std::string>{"wall-clock", "unordered-container"}));
  EXPECT_FALSE(sups[0].reason.empty());
}

TEST(Suppressions, CoversSameAndNextLine) {
  Tree tree;
  FileUnit unit = MakeUnit(
      "src/gvfs/fixture.cpp",
      "// gvfs-lint: allow(wall-clock): fixture exercises next-line scope\n"
      "long a = time(nullptr);\n"
      "long b = time(nullptr);  // gvfs-lint: allow(wall-clock): same line\n"
      "long c = time(nullptr);\n");
  tree.emplace(unit.rel_path, std::move(unit));
  const auto findings = LintTree(tree);
  ASSERT_EQ(CountRule(findings, "wall-clock"), 1);
  // Only the uncovered line 4 survives.
  for (const Finding& f : findings) {
    if (f.rule == "wall-clock") {
      EXPECT_EQ(f.line, 4);
    }
  }
}

// ---------------------------------------------------------------------------
// Per-file rules, golden fixtures
// ---------------------------------------------------------------------------

struct RuleFixture {
  const char* rule;
  bool has_suppressed;  // bad-suppression cannot suppress itself
};

constexpr RuleFixture kRuleFixtures[] = {
    {"wall-clock", true},
    {"ambient-randomness", true},
    {"banned-include", true},
    {"unordered-container", true},
    {"pointer-order", true},
    {"throw-in-protocol", true},
    {"try-in-protocol", true},
    {"discarded-expected", true},
    {"bad-suppression", false},
    {"use-after-suspend", true},
    {"iter-after-suspend", true},
    {"lock-across-suspend", true},
    {"detached-task", true},
};

TEST(RuleFixtures, FirePassSuppressed) {
  for (const RuleFixture& rf : kRuleFixtures) {
    SCOPED_TRACE(rf.rule);
    const fs::path dir = kTestdata / "rules" / rf.rule;

    const auto fire = LintFixture(dir / "fire.cpp");
    EXPECT_GE(CountRule(fire, rf.rule), 1) << "fire.cpp did not fire";

    const auto pass = LintFixture(dir / "pass.cpp");
    EXPECT_EQ(pass.size(), 0u) << "pass.cpp is not clean: "
                               << FormatText(pass);

    if (rf.has_suppressed) {
      const auto suppressed = LintFixture(dir / "suppressed.cpp");
      EXPECT_EQ(suppressed.size(), 0u)
          << "suppressed.cpp is not clean: " << FormatText(suppressed);
      // The annotation, not the code, is what keeps it clean: the same file
      // with comments stripped must fire.
      std::string body = ReadFile(dir / "suppressed.cpp");
      Tree tree;
      Lexed lex = Lex(body);
      FileUnit unit;
      unit.rel_path = "src/gvfs/fixture.cpp";
      unit.disk_path = unit.rel_path;
      unit.lex = std::move(lex);
      // suppressions intentionally left unparsed
      tree.emplace(unit.rel_path, std::move(unit));
      EXPECT_GE(CountRule(LintTree(tree), rf.rule), 1)
          << "suppressed.cpp would not fire even without its annotation";
    }
  }
}

// hot-path-type scopes to src/sim + src/rpc, narrower than the shared
// fixture harness's src/gvfs/ path, so it gets its own fire/pass/suppressed
// pass at an in-scope path plus an out-of-scope check.
TEST(RuleFixtures, HotPathTypeFirePassSuppressedScoped) {
  const fs::path dir = kTestdata / "rules" / "hot-path-type";
  auto lint_at = [&](const char* rel_path, const fs::path& file) {
    Tree tree;
    FileUnit unit = MakeUnit(rel_path, ReadFile(file));
    tree.emplace(unit.rel_path, std::move(unit));
    return LintTree(tree);
  };

  const auto fire = lint_at("src/sim/fixture.cpp", dir / "fire.cpp");
  EXPECT_EQ(CountRule(fire, "hot-path-type"), 2)
      << "expected one std::function and one std::map finding";
  const auto fire_rpc = lint_at("src/rpc/fixture.cpp", dir / "fire.cpp");
  EXPECT_EQ(CountRule(fire_rpc, "hot-path-type"), 2);

  const auto pass = lint_at("src/sim/fixture.cpp", dir / "pass.cpp");
  EXPECT_EQ(pass.size(), 0u) << "pass.cpp is not clean: " << FormatText(pass);

  const auto suppressed =
      lint_at("src/sim/fixture.cpp", dir / "suppressed.cpp");
  EXPECT_EQ(suppressed.size(), 0u)
      << "suppressed.cpp is not clean: " << FormatText(suppressed);

  // Outside the two hot-path directories the rule must stay silent: the
  // flexibility of std::function/std::map is fine where packets don't flow.
  const auto out_of_scope = lint_at("src/gvfs/fixture.cpp", dir / "fire.cpp");
  EXPECT_EQ(CountRule(out_of_scope, "hot-path-type"), 0);
}

TEST(Rules, PlainVariableDiscardIsAllowed) {
  Tree tree;
  FileUnit unit = MakeUnit("src/gvfs/fixture.cpp",
                           "void F(int body) { (void)body; }\n");
  tree.emplace(unit.rel_path, std::move(unit));
  EXPECT_EQ(CountRule(LintTree(tree), "discarded-expected"), 0);
}

TEST(Rules, ProtocolRulesScopedToProtocolDirs) {
  // The same throw outside src/{gvfs,rpc,nfs3,sim} is not a finding: tests
  // and workloads may use exceptions.
  Tree tree;
  FileUnit unit = MakeUnit("tests/fixture.cpp",
                           "void F() { throw 1; }\n");
  tree.emplace(unit.rel_path, std::move(unit));
  EXPECT_EQ(CountRule(LintTree(tree), "throw-in-protocol"), 0);
}

// ---------------------------------------------------------------------------
// Cross-file coverage rules
// ---------------------------------------------------------------------------

class CoverageTest : public ::testing::Test {
 protected:
  /// Copies the ok-tree into a temp dir, overlaying one seeded-violation
  /// variant if given, and lints the result.
  std::vector<Finding> LintVariant(const std::string& variant) {
    const fs::path temp =
        fs::path(::testing::TempDir()) / "gvfs_lint_cov" /
        (variant.empty() ? "ok" : variant);
    fs::remove_all(temp);
    fs::create_directories(temp);
    fs::copy(kTestdata / "coverage" / "ok", temp,
             fs::copy_options::recursive | fs::copy_options::overwrite_existing);
    if (!variant.empty()) {
      fs::copy(kTestdata / "coverage" / "variants" / variant, temp,
               fs::copy_options::recursive |
                 fs::copy_options::overwrite_existing);
    }
    std::string error;
    LintOptions opts;
    opts.dirs = {"src", "tools"};
    auto findings = LintRoot(temp.string(), opts, &error);
    EXPECT_EQ(error, "");
    return findings;
  }
};

TEST_F(CoverageTest, OkTreeIsClean) {
  const auto findings = LintVariant("");
  EXPECT_EQ(findings.size(), 0u) << FormatText(findings);
}

TEST_F(CoverageTest, MissingInvalidationAppendIsCaught) {
  // The seeded regression from the issue: RecordInvalidation still exists
  // and still traces, but the buffer append was deleted.
  const auto findings = LintVariant("missing_append");
  EXPECT_GE(CountRule(findings, "inv-coverage"), 1) << FormatText(findings);
}

TEST_F(CoverageTest, UnmarkedMutatingProcIsCaught) {
  const auto findings = LintVariant("missing_mutating");
  EXPECT_GE(CountRule(findings, "inv-coverage"), 1) << FormatText(findings);
}

TEST_F(CoverageTest, UnregisteredProcIsCaught) {
  const auto findings = LintVariant("missing_handler");
  EXPECT_GE(CountRule(findings, "proc-coverage"), 1) << FormatText(findings);
}

TEST_F(CoverageTest, UnregisteredGvfsProcIsCaught) {
  const auto findings = LintVariant("missing_gvfs_handler");
  EXPECT_GE(CountRule(findings, "proc-coverage"), 1) << FormatText(findings);
}

TEST_F(CoverageTest, MissingProcNameIsCaught) {
  const auto findings = LintVariant("missing_name");
  EXPECT_GE(CountRule(findings, "stats-name-coverage"), 1)
      << FormatText(findings);
}

TEST_F(CoverageTest, UntracedAppendIsCaught) {
  const auto findings = LintVariant("missing_trace");
  EXPECT_GE(CountRule(findings, "trace-coverage"), 1) << FormatText(findings);
}

TEST_F(CoverageTest, MissingAggregatorAppendIsCaught) {
  // The tier-level twin of missing_append: Fanout() still traces but no
  // longer appends to the downstream buffer.
  const auto findings = LintVariant("missing_agg_append");
  EXPECT_GE(CountRule(findings, "inv-coverage"), 1) << FormatText(findings);
}

TEST_F(CoverageTest, UntracedAggregatorFanoutIsCaught) {
  // Appends are intact but kAggIngest/kAggFanout are gone: one trace-coverage
  // finding per untraced hop across the tier.
  const auto findings = LintVariant("missing_agg_trace");
  EXPECT_GE(CountRule(findings, "trace-coverage"), 2) << FormatText(findings);
}

TEST_F(CoverageTest, MissingMigrateDrainIsCaught) {
  // HandleMigrate() still recalls conflicts but skipped the buffered-
  // invalidation drain: the exact bug TraceChecker invariant 6 observes at
  // runtime, caught here at lint time.
  const auto findings = LintVariant("missing_drain");
  EXPECT_GE(CountRule(findings, "migrate-coverage"), 1)
      << FormatText(findings);
}

TEST_F(CoverageTest, MissingMigrateFlushIsCaught) {
  // Client-side twin: MigrateMode() drops the delegation without flushing.
  const auto findings = LintVariant("missing_migrate_flush");
  EXPECT_GE(CountRule(findings, "migrate-coverage"), 1)
      << FormatText(findings);
}

TEST_F(CoverageTest, MissingEventTypeNameIsCaught) {
  const auto findings = LintVariant("missing_event_name");
  EXPECT_GE(CountRule(findings, "trace-coverage"), 1) << FormatText(findings);
}

TEST_F(CoverageTest, MissingDetectorRegistrationIsCaught) {
  // An AnomalyKind dropped from kDetectors loses its observatory counter
  // and its dump rendering while the rest of the pipeline still compiles.
  const auto findings = LintVariant("missing_detector");
  EXPECT_GE(CountRule(findings, "anomaly-coverage"), 1)
      << FormatText(findings);
}

TEST_F(CoverageTest, MissingAnomalyNameIsCaught) {
  // A kind without an AnomalyKindName case serialises as "?" in dumps, so
  // the doctor can no longer round-trip it.
  const auto findings = LintVariant("missing_anomaly_name");
  EXPECT_GE(CountRule(findings, "anomaly-coverage"), 1)
      << FormatText(findings);
}

TEST_F(CoverageTest, MissingVerdictIsCaught) {
  // The doctor's remedy table is part of the detector contract: a kind the
  // post-mortem cannot advise on is a finding, caught at lint time.
  const auto findings = LintVariant("missing_verdict");
  EXPECT_GE(CountRule(findings, "anomaly-coverage"), 1)
      << FormatText(findings);
}

// ---------------------------------------------------------------------------
// Output formats
// ---------------------------------------------------------------------------

TEST(Output, FormatsCarryEveryFinding) {
  const std::vector<Finding> findings = {
      {"wall-clock", "src/a.cpp", 3, "uses \"time\""},
      {"inv-coverage", "src/b.cpp", 7, "no append"},
  };
  const std::string text = FormatText(findings);
  EXPECT_NE(text.find("src/a.cpp:3: [wall-clock]"), std::string::npos);
  EXPECT_NE(text.find("src/b.cpp:7: [inv-coverage]"), std::string::npos);

  const std::string json = FormatJson(findings);
  EXPECT_NE(json.find("\"rule\":\"wall-clock\""), std::string::npos);
  EXPECT_NE(json.find("\\\"time\\\""), std::string::npos);  // escaping

  const std::string sarif = FormatSarif(findings);
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\":\"inv-coverage\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\":7"), std::string::npos);
  // Rule metadata is embedded for the SARIF viewer.
  EXPECT_NE(sarif.find("\"id\":\"unordered-container\""), std::string::npos);
}

TEST(Registry, AtLeastEightRules) {
  EXPECT_GE(AllRules().size(), 8u);
  EXPECT_TRUE(IsKnownRule("inv-coverage"));
  EXPECT_FALSE(IsKnownRule("made-up-rule"));
}

}  // namespace
}  // namespace gvfs::lint
