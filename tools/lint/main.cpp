// gvfs-lint CLI.
//
//   gvfs-lint [--root DIR] [--format text|json|sarif] [--output FILE]
//             [--list-rules] [--audit-suppressions] [dir...]
//
// Positional dirs (relative to --root, default: src tests bench examples
// tools) narrow the scan. Exit 0 when clean, 1 on findings, 2 on usage or
// I/O errors — so CI can gate on the exit code while uploading the SARIF.
// --audit-suppressions instead re-runs every rule unsuppressed and exits 3
// if any reasoned suppression no longer silences anything (stale).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "lint.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: gvfs-lint [--root DIR] [--format text|json|sarif]\n"
      "                 [--output FILE] [--list-rules]\n"
      "                 [--audit-suppressions] [dir...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using gvfs::lint::AllRules;
  using gvfs::lint::Finding;
  using gvfs::lint::LintOptions;
  using gvfs::lint::LintRoot;

  std::string root = ".";
  std::string format = "text";
  std::string output;
  std::vector<std::string> dirs;
  bool list_rules = false;
  bool audit = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "gvfs-lint: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--root") {
      const char* v = value("--root");
      if (v == nullptr) return Usage();
      root = v;
    } else if (arg == "--format") {
      const char* v = value("--format");
      if (v == nullptr) return Usage();
      format = v;
    } else if (arg == "--output") {
      const char* v = value("--output");
      if (v == nullptr) return Usage();
      output = v;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--audit-suppressions") {
      audit = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "gvfs-lint: unknown flag '%s'\n", arg.c_str());
      return Usage();
    } else {
      dirs.push_back(arg);
    }
  }
  if (format != "text" && format != "json" && format != "sarif") {
    std::fprintf(stderr, "gvfs-lint: unknown format '%s'\n", format.c_str());
    return Usage();
  }

  if (list_rules) {
    for (const auto& rule : AllRules()) {
      std::printf("%-22s %s\n", rule.id, rule.summary);
    }
    return 0;
  }

  LintOptions opts;
  if (!dirs.empty()) opts.dirs = dirs;

  if (audit) {
    std::string error;
    const gvfs::lint::Tree tree = gvfs::lint::LoadTree(root, opts, &error);
    if (!error.empty()) {
      std::fprintf(stderr, "gvfs-lint: %s\n", error.c_str());
      return 2;
    }
    const auto stale = gvfs::lint::AuditSuppressions(tree);
    for (const auto& s : stale) {
      std::printf("%s:%d: stale suppression: '%s' no longer fires here — "
                  "remove the allow() or fix the annotation\n",
                  s.file.c_str(), s.line, s.rule.c_str());
    }
    std::fprintf(stderr, "gvfs-lint: %zu stale suppression%s\n", stale.size(),
                 stale.size() == 1 ? "" : "s");
    return stale.empty() ? 0 : 3;
  }

  std::string error;
  const std::vector<Finding> findings = LintRoot(root, opts, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "gvfs-lint: %s\n", error.c_str());
    return 2;
  }

  std::string rendered;
  if (format == "json") {
    rendered = gvfs::lint::FormatJson(findings);
  } else if (format == "sarif") {
    rendered = gvfs::lint::FormatSarif(findings);
  } else {
    rendered = gvfs::lint::FormatText(findings);
  }

  if (output.empty()) {
    std::fputs(rendered.c_str(), stdout);
  } else {
    std::ofstream out(output, std::ios::binary);
    out << rendered;
    if (!out) {
      std::fprintf(stderr, "gvfs-lint: cannot write %s\n", output.c_str());
      return 2;
    }
    // Keep the human-readable view on stderr when the file gets the
    // machine-readable one.
    std::fputs(gvfs::lint::FormatText(findings).c_str(), stderr);
  }

  std::fprintf(stderr, "gvfs-lint: %zu finding%s\n", findings.size(),
               findings.size() == 1 ? "" : "s");
  return findings.empty() ? 0 : 1;
}
