// gvfs-lint: a static analyzer for the determinism and protocol-discipline
// invariants this repo's tests can only observe at runtime.
//
// The simulator's load-bearing property is byte-for-byte reproducibility:
// the FIFO-tie scheduler, the seeded Rng, and ordered containers everywhere
// an iteration order can leak into exporter output. The protocol's
// load-bearing property is completeness: every mutating NFS procedure must
// append to the invalidation buffers and leave a trace event, every
// procedure needs a handler and a stats name. Both are whole-bug-class
// guarantees, so they are enforced here, before any test runs:
//
//   - per-file token rules (rules.cpp): wall-clock reads, ambient
//     randomness, nondeterministic containers, pointer-value ordering,
//     exceptions and discarded Expected values in the coroutine protocol
//     paths, banned includes, malformed suppressions;
//   - cross-file coverage rules (coverage.cpp): structural proofs over the
//     proc dispatch table, the Classify switch, RecordInvalidation, and the
//     trace-event name table.
//
// Findings can be silenced inline, but only with a reason — behind the
// analyzer's comment prefix, the annotation names one or more rules, then a
// colon, then the justification:
//
//   allow(unordered-container): scratch set, order never escapes
//
// A suppression written on its own line covers the next line; one written
// after code covers its own line. A suppression with no reason, or naming an
// unknown rule, is itself a finding (bad-suppression) and cannot be
// silenced.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "lexer.h"

namespace gvfs::lint {

struct Finding {
  std::string rule;
  std::string file;  // path as reported (repo-relative when possible)
  int line = 0;
  std::string message;
};

/// One parsed inline suppression annotation.
struct Suppression {
  int line = 0;          // where the annotation sits (for diagnostics)
  int covered_line = 0;  // the line whose findings it silences
  std::vector<std::string> rules;
  std::string reason;
};

/// A lexed source file plus its repo-relative path (used for rule scoping).
struct FileUnit {
  std::string rel_path;   // forward-slash, relative to the scan root
  std::string disk_path;  // where the file was read from (for reporting)
  Lexed lex;
  std::vector<Suppression> suppressions;
};

/// The whole scanned tree, keyed by rel_path.
using Tree = std::map<std::string, FileUnit>;

// ---------------------------------------------------------------------------
// Rule registry
// ---------------------------------------------------------------------------

struct RuleInfo {
  const char* id;
  const char* summary;  // one-liner, shown in SARIF rule metadata
  // Per-file rules: check one unit. Null for cross-file rules.
  void (*check_file)(const FileUnit&, std::vector<Finding>&);
  // Cross-file rules: check the tree as a whole. Null for per-file rules.
  void (*check_tree)(const Tree&, std::vector<Finding>&);
  // Path predicate for per-file rules; null means "every scanned file".
  bool (*applies)(const std::string& rel_path);
};

/// Every registered rule, per-file and cross-file.
const std::vector<RuleInfo>& AllRules();

/// True if `id` names a registered rule.
bool IsKnownRule(const std::string& id);

/// Path scopes shared by several rules.
bool InProtocolDirs(const std::string& rel_path);  // gvfs/rpc/nfs3/fleet/policy/sim
bool InSrc(const std::string& rel_path);
bool InSrcOrBench(const std::string& rel_path);

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

struct LintOptions {
  // Subdirectories of the root to scan (default: the whole source set).
  std::vector<std::string> dirs = {"src", "tests", "bench", "examples",
                                   "tools"};
};

/// Parses suppression annotations out of a lexed file's comments.
std::vector<Suppression> ParseSuppressions(const Lexed& lex);

/// Lexes `source` as if it lived at `rel_path` (unit-test entry point).
FileUnit MakeUnit(std::string rel_path, std::string_view source);

/// Walks `root`'s configured dirs (skipping build litter: build*/,
/// CMakeFiles/, Testing/, testdata/, .git/, _deps/), lexing every
/// .h/.hpp/.cpp/.cc file into a Tree. On I/O failure sets *error and
/// returns an empty tree.
Tree LoadTree(const std::string& root, const LintOptions& opts,
              std::string* error);

/// Runs every applicable rule over the tree and returns the raw findings —
/// no suppression filtering, no ordering guarantee. The audit uses this to
/// ask "would this rule still fire here?".
std::vector<Finding> RunAllRules(const Tree& tree);

/// Lints an in-memory tree: runs every applicable rule, then drops findings
/// covered by a reasoned suppression. This is the core the CLI and the tests
/// share.
std::vector<Finding> LintTree(const Tree& tree);

/// LoadTree + LintTree.
std::vector<Finding> LintRoot(const std::string& root, const LintOptions& opts,
                              std::string* error);

/// One suppression that silences nothing: its rule no longer fires on the
/// line it covers. Stale suppressions are dead weight that hides future
/// regressions, so `gvfs-lint --audit-suppressions` fails on them (exit 3).
struct StaleSuppression {
  std::string file;  // rel_path
  int line = 0;      // where the annotation sits
  std::string rule;  // the named rule that no longer fires
};

/// Re-runs every rule unsuppressed and reports each (suppression, rule) pair
/// with no matching finding on the covered line. Malformed suppressions
/// (empty reason, unknown rule) are bad-suppression findings already and are
/// skipped here.
std::vector<StaleSuppression> AuditSuppressions(const Tree& tree);

// ---------------------------------------------------------------------------
// Output
// ---------------------------------------------------------------------------

std::string FormatText(const std::vector<Finding>& findings);
std::string FormatJson(const std::vector<Finding>& findings);
std::string FormatSarif(const std::vector<Finding>& findings);

}  // namespace gvfs::lint
