#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace gvfs::lint {

namespace fs = std::filesystem;

namespace {

std::string Trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

}  // namespace

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

std::vector<Suppression> ParseSuppressions(const Lexed& lex) {
  std::vector<Suppression> out;
  for (const Comment& comment : lex.comments) {
    const std::size_t marker = comment.text.find("gvfs-lint:");
    if (marker == std::string::npos) continue;
    // Only the full marker-plus-allow form is an annotation; prose that
    // merely mentions the tool name is not.
    std::string_view after = std::string_view(comment.text).substr(marker + 10);
    while (!after.empty() && (after.front() == ' ' || after.front() == '\t')) {
      after.remove_prefix(1);
    }
    if (after.rfind("allow(", 0) != 0) continue;
    Suppression s;
    s.line = comment.line;
    // A trailing annotation covers the code on its own line; an annotation
    // alone on its line covers the line below it.
    bool code_on_line = false;
    for (const Token& t : lex.tokens) {
      if (t.line == comment.line) {
        code_on_line = true;
        break;
      }
      if (t.line > comment.line) break;
    }
    s.covered_line = code_on_line ? comment.line : comment.line + 1;
    std::string_view rest = std::string_view(comment.text).substr(marker + 10);
    const std::size_t open = rest.find("allow(");
    if (open != std::string::npos) {
      rest.remove_prefix(open + 6);
      const std::size_t close = rest.find(')');
      if (close != std::string::npos) {
        std::string_view list = rest.substr(0, close);
        while (!list.empty()) {
          const std::size_t comma = list.find(',');
          s.rules.push_back(Trim(list.substr(0, comma)));
          if (comma == std::string::npos) break;
          list.remove_prefix(comma + 1);
        }
        rest.remove_prefix(close + 1);
        const std::size_t colon = rest.find(':');
        if (colon != std::string::npos) s.reason = Trim(rest.substr(colon + 1));
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

FileUnit MakeUnit(std::string rel_path, std::string_view source) {
  FileUnit unit;
  unit.rel_path = std::move(rel_path);
  unit.disk_path = unit.rel_path;
  unit.lex = Lex(source);
  unit.suppressions = ParseSuppressions(unit.lex);
  return unit;
}

// ---------------------------------------------------------------------------
// Core
// ---------------------------------------------------------------------------

std::vector<Finding> RunAllRules(const Tree& tree) {
  std::vector<Finding> all;
  for (const RuleInfo& rule : AllRules()) {
    if (rule.check_file != nullptr) {
      for (const auto& [rel, unit] : tree) {
        if (rule.applies != nullptr && !rule.applies(rel)) continue;
        rule.check_file(unit, all);
      }
    } else if (rule.check_tree != nullptr) {
      rule.check_tree(tree, all);
    }
  }
  return all;
}

std::vector<Finding> LintTree(const Tree& tree) {
  std::vector<Finding> all = RunAllRules(tree);

  // Drop findings covered by a reasoned suppression on the same or the
  // preceding line. bad-suppression findings are never droppable: a
  // suppression cannot vouch for itself.
  std::vector<Finding> kept;
  for (Finding& finding : all) {
    bool suppressed = false;
    if (finding.rule != "bad-suppression") {
      auto it = tree.find(finding.file);
      if (it != tree.end()) {
        for (const Suppression& s : it->second.suppressions) {
          if (s.reason.empty()) continue;
          if (finding.line != s.covered_line) continue;
          if (std::find(s.rules.begin(), s.rules.end(), finding.rule) !=
              s.rules.end()) {
            suppressed = true;
            break;
          }
        }
      }
    }
    if (!suppressed) kept.push_back(std::move(finding));
  }

  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return kept;
}

std::vector<StaleSuppression> AuditSuppressions(const Tree& tree) {
  const std::vector<Finding> all = RunAllRules(tree);
  std::vector<StaleSuppression> stale;
  for (const auto& [rel, unit] : tree) {
    for (const Suppression& s : unit.suppressions) {
      if (s.reason.empty()) continue;  // bad-suppression territory
      for (const std::string& rule : s.rules) {
        if (!IsKnownRule(rule)) continue;  // likewise
        const bool fires = std::any_of(
            all.begin(), all.end(), [&](const Finding& f) {
              return f.file == rel && f.line == s.covered_line &&
                     f.rule == rule;
            });
        if (!fires) stale.push_back({rel, s.line, rule});
      }
    }
  }
  std::sort(stale.begin(), stale.end(),
            [](const StaleSuppression& a, const StaleSuppression& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return stale;
}

// ---------------------------------------------------------------------------
// Filesystem walk
// ---------------------------------------------------------------------------

namespace {

bool IsSourceFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

/// Build litter and fixture dirs are never linted: in-source builds drop
/// CMakeFiles/ and objects next to the code, and testdata/ holds snippets
/// that fire rules on purpose.
bool IsSkippedDir(const std::string& name) {
  return name == "CMakeFiles" || name == "Testing" || name == "testdata" ||
         name == ".git" || name == "_deps" ||
         name.rfind("build", 0) == 0 || name.rfind("cmake-build", 0) == 0;
}

}  // namespace

Tree LoadTree(const std::string& root, const LintOptions& opts,
              std::string* error) {
  std::error_code ec;
  const fs::path root_path(root);
  if (!fs::is_directory(root_path, ec)) {
    if (error != nullptr) *error = "not a directory: " + root;
    return {};
  }

  Tree tree;
  for (const std::string& dir : opts.dirs) {
    const fs::path base = root_path / dir;
    if (!fs::is_directory(base, ec)) continue;
    fs::recursive_directory_iterator it(base, ec);
    const fs::recursive_directory_iterator end;
    while (it != end) {
      const fs::path& path = it->path();
      if (it->is_directory(ec) && IsSkippedDir(path.filename().string())) {
        it.disable_recursion_pending();
        it.increment(ec);
        continue;
      }
      if (it->is_regular_file(ec) && IsSourceFile(path)) {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        if (in.bad()) {
          if (error != nullptr) *error = "read failed: " + path.string();
          return {};
        }
        FileUnit unit = MakeUnit(
            path.lexically_relative(root_path).generic_string(), buf.str());
        unit.disk_path = path.generic_string();
        tree.emplace(unit.rel_path, std::move(unit));
      }
      it.increment(ec);
      if (ec) {
        if (error != nullptr) *error = "walk failed: " + ec.message();
        return {};
      }
    }
  }
  return tree;
}

std::vector<Finding> LintRoot(const std::string& root, const LintOptions& opts,
                              std::string* error) {
  std::string load_error;
  Tree tree = LoadTree(root, opts, &load_error);
  if (!load_error.empty()) {
    if (error != nullptr) *error = std::move(load_error);
    return {};
  }
  return LintTree(tree);
}

// ---------------------------------------------------------------------------
// Output formats
// ---------------------------------------------------------------------------

namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof hex, "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string FormatText(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const Finding& f : findings) {
    out << f.file << ':' << f.line << ": [" << f.rule << "] " << f.message
        << '\n';
  }
  return out.str();
}

std::string FormatJson(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\"findings\":[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i > 0) out << ',';
    out << "{\"rule\":\"" << JsonEscape(f.rule) << "\",\"file\":\""
        << JsonEscape(f.file) << "\",\"line\":" << f.line << ",\"message\":\""
        << JsonEscape(f.message) << "\"}";
  }
  out << "]}\n";
  return out.str();
}

std::string FormatSarif(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\","
      << "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
      << "\"name\":\"gvfs-lint\",\"informationUri\":"
      << "\"https://example.invalid/gvfs-lint\",\"rules\":[";
  const auto& rules = AllRules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (i > 0) out << ',';
    out << "{\"id\":\"" << JsonEscape(rules[i].id)
        << "\",\"shortDescription\":{\"text\":\"" << JsonEscape(rules[i].summary)
        << "\"}}";
  }
  out << "]}},\"results\":[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i > 0) out << ',';
    out << "{\"ruleId\":\"" << JsonEscape(f.rule)
        << "\",\"level\":\"error\",\"message\":{\"text\":\""
        << JsonEscape(f.message)
        << "\"},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{"
        << "\"uri\":\"" << JsonEscape(f.file)
        << "\"},\"region\":{\"startLine\":" << (f.line > 0 ? f.line : 1)
        << "}}}]}";
  }
  out << "]}]}\n";
  return out.str();
}

}  // namespace gvfs::lint
