// Quickstart: build a simulated WAN, export a filesystem over NFSv3, let
// middleware establish a GVFS session with invalidation-polling consistency,
// and do some file I/O through the unmodified kernel-client mount.
//
//   $ ./examples/quickstart
//
// Everything runs in virtual time on a discrete-event simulator; the printed
// timings are simulated seconds over a 40 ms RTT / 4 Mbps WAN.
#include <cstdio>
#include <optional>

#include "workloads/testbed.h"

namespace {

using namespace gvfs;

template <typename T>
sim::Task<void> Capture(sim::Task<T> task, std::optional<T>* out) {
  *out = co_await std::move(task);
}

template <typename T>
T Run(sim::Scheduler& sched, sim::Task<T> task) {
  std::optional<T> out;
  sim::Spawn(Capture(std::move(task), &out));
  while (!out.has_value() && !sched.Idle()) sched.Run(1);
  return std::move(*out);
}

sim::Task<void> Scenario(workloads::Testbed* bed, workloads::GvfsSession* session) {
  auto& sched = bed->sched();
  kclient::KernelClient& fs = session->mount(0);

  std::printf("[%.3fs] creating /hello over the WAN...\n", ToSeconds(sched.Now()));
  auto fd = co_await fs.Open(
      "/hello", kclient::OpenFlags{.read = true, .write = true, .create = true});
  if (!fd) co_return;

  Bytes message = {'h', 'i', ',', ' ', 'g', 'v', 'f', 's', '!'};
  (void)co_await fs.Write(*fd, 0, message);
  (void)co_await fs.Close(*fd);
  std::printf("[%.3fs] wrote and closed (data flushed to the server)\n",
              ToSeconds(sched.Now()));

  // Re-reads are served from caches; consistency checks are filtered by the
  // proxy's invalidation-polling model, so repeated stats cost no WAN trips.
  for (int i = 0; i < 3; ++i) {
    auto attr = co_await fs.Stat("/hello");
    std::printf("[%.3fs] stat #%d -> size=%llu\n", ToSeconds(sched.Now()), i + 1,
                attr ? static_cast<unsigned long long>(attr->size) : 0ull);
  }

  auto fd2 = co_await fs.Open("/hello", kclient::OpenFlags{});
  auto data = co_await fs.Read(*fd2, 0, 64);
  (void)co_await fs.Close(*fd2);
  if (data) {
    std::printf("[%.3fs] read back %zu bytes: \"%.*s\"\n", ToSeconds(sched.Now()),
                data->size(), static_cast<int>(data->size()),
                reinterpret_cast<const char*>(data->data()));
  }
}

}  // namespace

int main() {
  using namespace gvfs;

  // One file server, one WAN client (40 ms RTT / 4 Mbps, the paper's setup).
  workloads::Testbed bed;
  bed.AddWanClient();

  // Middleware establishes the session: proxy server + proxy client + mount.
  proxy::SessionConfig config;
  config.model = proxy::ConsistencyModel::kInvalidationPolling;
  config.poll_period = Seconds(30);
  auto& session = bed.CreateSession(config, {0});

  bool done = false;
  sim::Spawn([](workloads::Testbed* b, workloads::GvfsSession* s,
                bool* flag) -> sim::Task<void> {
    co_await Scenario(b, s);
    *flag = true;
  }(&bed, &session, &done));
  while (!done && !bed.sched().Idle()) bed.sched().Run(1);

  std::printf("\nWAN RPCs used, by procedure:\n");
  for (const auto& label : session.stats->Labels()) {
    std::printf("  %-10s %llu\n", label.c_str(),
                static_cast<unsigned long long>(session.stats->Calls(label)));
  }
  return 0;
}
