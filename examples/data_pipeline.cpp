// Motivating scenario "Scientific Data Processing" (paper §3, Figure 1
// session 1): real-time data are collected on-site and processed off-site,
// sharing files through a GVFS session with strong delegation/callback
// consistency — the consumer always sees complete, fresh inputs, with no
// revalidation storms as the dataset grows.
#include <cstdio>

#include "workloads/testbed.h"

namespace {

using namespace gvfs;

sim::Task<void> Scenario(workloads::Testbed* bed, workloads::GvfsSession* session) {
  auto& sched = bed->sched();
  auto& producer = session->mount(0);
  auto& consumer = session->mount(1);

  (void)co_await producer.Mkdir("/obs");

  int total = 0;
  for (int round = 1; round <= 5; ++round) {
    // On-site: a burst of new observations.
    for (int i = 0; i < 10; ++i) {
      auto fd = co_await producer.Open(
          "/obs/sample" + std::to_string(total + i),
          kclient::OpenFlags{.read = true, .write = true, .create = true});
      if (fd) {
        (void)co_await producer.Write(*fd, 0, Bytes(16 * 1024, 'o'));
        (void)co_await producer.Close(*fd);
      }
    }
    total += 10;

    // Off-site: process everything collected so far. Strong consistency:
    // the listing and every file are guaranteed current — no polling window.
    const SimTime start = sched.Now();
    auto names = co_await consumer.ReadDir("/obs");
    int processed = 0;
    std::uint64_t bytes = 0;
    if (names) {
      for (const auto& name : *names) {
        auto fd = co_await consumer.Open("/obs/" + name, kclient::OpenFlags{});
        if (!fd) continue;
        auto data = co_await consumer.Read(*fd, 0, 16 * 1024);
        (void)co_await consumer.Close(*fd);
        if (data) {
          ++processed;
          bytes += data->size();
        }
      }
    }
    std::printf("round %d: consumer saw %d/%d files (%llu KB) in %.2fs\n", round,
                processed, total, static_cast<unsigned long long>(bytes / 1024),
                ToSeconds(sched.Now() - start));

    co_await sim::Sleep(sched, Seconds(30));
  }

  std::printf("\ncallbacks sent by the proxy server (delegation recalls): %llu\n",
              static_cast<unsigned long long>(session->server->stats().callbacks_sent));
}

}  // namespace

int main() {
  using namespace gvfs;

  workloads::Testbed bed;
  bed.AddWanClient();  // on-site collection host
  bed.AddWanClient();  // off-site compute center

  // Strong consistency session: kernel attribute caching disabled, the GVFS
  // delegation/callback protocol supplies correctness; write-back lets the
  // producer absorb bursts locally.
  proxy::SessionConfig config;
  config.model = proxy::ConsistencyModel::kDelegationCallback;
  config.cache_mode = proxy::CacheMode::kWriteBack;
  kclient::MountOptions noac;
  noac.noac = true;
  auto& session = bed.CreateSession(config, {0, 1}, noac);

  bool done = false;
  sim::Spawn([](workloads::Testbed* b, workloads::GvfsSession* s,
                bool* flag) -> sim::Task<void> {
    co_await Scenario(b, s);
    *flag = true;
  }(&bed, &session, &done));
  while (!done && !bed.sched().Idle()) bed.sched().Run(1);
  return 0;
}
