// Motivating scenario "Software Repositories" (paper §3, Figure 1 session 2):
// a read-only shared software repository served to WAN users with
// invalidation-polling consistency, maintained by a LAN administrator.
//
// Two WAN users repeatedly scan the repository; the admin pushes an update;
// the users' proxies learn about it through batched GETINV invalidations and
// revalidate only what changed.
#include <cstdio>

#include "workloads/testbed.h"

namespace {

using namespace gvfs;

sim::Task<void> UserScan(sim::Scheduler* sched, kclient::KernelClient* fs,
                         const char* who, int files) {
  const SimTime start = sched->Now();
  for (int i = 0; i < files; ++i) {
    auto fd = co_await fs->Open("/repo/pkg" + std::to_string(i), kclient::OpenFlags{});
    if (fd) {
      (void)co_await fs->Read(*fd, 0, 8 * 1024);
      (void)co_await fs->Close(*fd);
    }
  }
  std::printf("  %-8s scanned %d packages in %.2fs (simulated)\n", who, files,
              ToSeconds(sched->Now() - start));
}

sim::Task<void> AdminUpdate(kclient::KernelClient* fs, int first, int count) {
  for (int i = first; i < first + count; ++i) {
    auto fd = co_await fs->Open("/repo/pkg" + std::to_string(i),
                                kclient::OpenFlags{.read = true, .write = true});
    if (fd) {
      (void)co_await fs->Write(*fd, 0, Bytes(8 * 1024, 'v'));
      (void)co_await fs->Close(*fd);
    }
  }
}

sim::Task<void> Scenario(workloads::Testbed* bed, workloads::GvfsSession* session,
                         int files) {
  auto& sched = bed->sched();
  auto& user1 = session->mount(0);
  auto& user2 = session->mount(1);
  auto& admin = session->mount(2);

  std::printf("cold scans (first access, data fetched over the WAN):\n");
  co_await UserScan(&sched, &user1, "user1", files);
  co_await UserScan(&sched, &user2, "user2", files);

  std::printf("warm scans (served from the proxies' disk caches):\n");
  co_await UserScan(&sched, &user1, "user1", files);
  co_await UserScan(&sched, &user2, "user2", files);

  std::printf("admin updates packages 0-9 over the LAN...\n");
  co_await AdminUpdate(&admin, 0, 10);
  // The pollers backed off while the repository was quiet (30 s -> 120 s);
  // wait out one full back-off window for the invalidations to arrive.
  co_await sim::Sleep(sched, Seconds(125));

  std::printf("post-update scans (only the 10 changed packages revalidate):\n");
  const auto wan_before = session->stats->TotalCalls();
  co_await UserScan(&sched, &user1, "user1", files);
  co_await UserScan(&sched, &user2, "user2", files);
  std::printf("  WAN RPCs for both post-update scans: %llu\n",
              static_cast<unsigned long long>(session->stats->TotalCalls() -
                                              wan_before));
}

}  // namespace

int main() {
  using namespace gvfs;
  constexpr int kFiles = 200;

  workloads::Testbed bed;
  bed.AddWanClient();   // user1
  bed.AddWanClient();   // user2
  bed.AddLanClient();   // administrator

  // Populate the repository server-side.
  auto repo = bed.fs().Mkdir(bed.fs().root(), "repo", 0755);
  for (int i = 0; i < kFiles; ++i) {
    auto ino = bed.fs().Create(*repo, "pkg" + std::to_string(i), 0644);
    (void)bed.fs().Write(*ino, 0, Bytes(8 * 1024, 'p'));
  }

  // The session is tailored for read-mostly sharing: 30 s invalidation
  // polling with back-off while the repository is quiet.
  proxy::SessionConfig config;
  config.model = proxy::ConsistencyModel::kInvalidationPolling;
  config.poll_period = Seconds(30);
  config.poll_max_period = Seconds(120);
  auto& session = bed.CreateSession(config, {0, 1, 2});

  bool done = false;
  sim::Spawn([](workloads::Testbed* b, workloads::GvfsSession* s, int files,
                bool* flag) -> sim::Task<void> {
    co_await Scenario(b, s, files);
    *flag = true;
  }(&bed, &session, kFiles, &done));
  while (!done && !bed.sched().Idle()) bed.sched().Run(1);

  std::printf("\nproxy stats (user1): served locally=%llu forwarded=%llu "
              "invalidations=%llu\n",
              static_cast<unsigned long long>(session.proxy(0).stats().served_locally),
              static_cast<unsigned long long>(session.proxy(0).stats().forwarded),
              static_cast<unsigned long long>(
                  session.proxy(0).stats().invalidations_applied));
  return 0;
}
