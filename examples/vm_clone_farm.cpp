// Motivating scenario "Distributed Virtual Machines" (paper §3): a master VM
// image is read-only shared by many clones, each with its own copy-on-write
// redo log. The session uses aggressive caching for both reads (the master
// image never changes) and writes (each clone's redo log is private), so
// after the first boot almost nothing crosses the WAN.
#include <cstdio>

#include "workloads/testbed.h"

namespace {

using namespace gvfs;

constexpr int kImageBlocks = 64;  // 2 MB master image @ 32 KB blocks
constexpr std::uint32_t kBlock = 32 * 1024;

sim::Task<void> BootClone(sim::Scheduler* sched, kclient::KernelClient* fs, int id,
                          double* seconds) {
  const SimTime start = sched->Now();

  // Read the shared master image (the "boot").
  auto fd = co_await fs->Open("/images/master.img", kclient::OpenFlags{});
  if (fd) {
    for (int b = 0; b < kImageBlocks; ++b) {
      (void)co_await fs->Read(*fd, static_cast<std::uint64_t>(b) * kBlock, kBlock);
    }
    (void)co_await fs->Close(*fd);
  }

  // Write this clone's private redo log (copy-on-write state).
  auto log = co_await fs->Open(
      "/images/clone" + std::to_string(id) + ".redo",
      kclient::OpenFlags{.read = true, .write = true, .create = true});
  if (log) {
    for (int b = 0; b < 8; ++b) {
      (void)co_await fs->Write(*log, static_cast<std::uint64_t>(b) * kBlock,
                               Bytes(kBlock, static_cast<std::uint8_t>(id)));
    }
    (void)co_await fs->Close(*log);
  }
  *seconds = ToSeconds(sched->Now() - start);
}

sim::Task<void> Scenario(workloads::Testbed* bed, workloads::GvfsSession* session) {
  auto& sched = bed->sched();
  for (int clone = 0; clone < static_cast<int>(session->mounts.size()); ++clone) {
    double cold = 0, warm = 0;
    co_await BootClone(&sched, &session->mount(clone), clone, &cold);
    // Second boot of the same clone: image blocks come from the disk cache,
    // redo-log writes are absorbed by write-back.
    co_await BootClone(&sched, &session->mount(clone), clone, &warm);
    std::printf("clone %d: cold boot %.2fs, warm boot %.2fs (%.0fx faster)\n",
                clone, cold, warm, cold / warm);
  }
}

}  // namespace

int main() {
  using namespace gvfs;

  workloads::Testbed bed;
  constexpr int kClones = 3;
  for (int i = 0; i < kClones; ++i) bed.AddWanClient();

  // Master image on the server.
  auto images = bed.fs().Mkdir(bed.fs().root(), "images", 0755);
  auto master = bed.fs().Create(*images, "master.img", 0444);
  (void)bed.fs().Write(*master, 0, Bytes(kImageBlocks * kBlock, 0xd1));

  // Tailored for VM cloning: aggressive read + write caching; the relaxed
  // polling model is plenty (the master image is immutable, redo logs are
  // private).
  proxy::SessionConfig config;
  config.model = proxy::ConsistencyModel::kInvalidationPolling;
  config.cache_mode = proxy::CacheMode::kWriteBack;
  config.poll_period = Seconds(60);
  config.poll_max_period = Seconds(300);
  auto& session = bed.CreateSession(config, {0, 1, 2});

  bool done = false;
  sim::Spawn([](workloads::Testbed* b, workloads::GvfsSession* s,
                bool* flag) -> sim::Task<void> {
    co_await Scenario(b, s);
    *flag = true;
  }(&bed, &session, &done));
  while (!done && !bed.sched().Idle()) bed.sched().Run(1);

  std::printf("\nWAN RPCs total: %llu (redo-log writes stayed in the disk "
              "caches)\n",
              static_cast<unsigned long long>(session.stats->TotalCalls()));
  return 0;
}
