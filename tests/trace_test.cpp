// Tests for the trace subsystem: ring buffer mechanics, the Chrome
// trace-event exporter, the invariant checker over synthetic event streams,
// and an end-to-end seeded-violation scenario where the proxy server is
// deliberately broken (unsafe_skip_recalls) and the checker must catch it.
#include <gtest/gtest.h>

#include <sstream>

#include "gvfs/proto.h"
#include "nfs3/proto.h"
#include "test_util.h"
#include "trace/checker.h"
#include "trace/export.h"
#include "trace/trace.h"
#include "workloads/testbed.h"

namespace gvfs::trace {
namespace {

using testutil::RunTask;

class TracerFixture : public ::testing::Test {
 protected:
  TracerFixture() : buffer_(1 << 12), tracer_(&buffer_, &now_) {}

  SimTime now_ = 0;
  TraceBuffer buffer_;
  Tracer tracer_;
};

// ---------------------------------------------------------------------------
// Ring buffer
// ---------------------------------------------------------------------------

TEST(TraceBuffer, KeepsNewestEventsWhenFull) {
  TraceBuffer buffer(4);
  SimTime now = 0;
  Tracer tracer(&buffer, &now);
  for (int i = 0; i < 6; ++i) {
    now = i;
    tracer.Node(EventType::kNodeCrash, static_cast<HostId>(i));
  }
  EXPECT_EQ(buffer.size(), 4u);
  EXPECT_EQ(buffer.recorded(), 6u);
  EXPECT_EQ(buffer.dropped(), 2u);
  // Oldest surviving event is #2; order is preserved.
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    EXPECT_EQ(buffer.at(i).host, static_cast<HostId>(i + 2));
    EXPECT_EQ(buffer.at(i).time, static_cast<SimTime>(i + 2));
  }
}

TEST(TraceBuffer, DisabledTracerRecordsNothing) {
  Tracer disabled;
  EXPECT_FALSE(disabled.enabled());
  // Must be safe to call with no buffer attached.
  disabled.Node(EventType::kNodeCrash, 1);
  disabled.Rpc(EventType::kRpcSend, 1, 2, 3, 4, 5, 6, 7, "X");
}

TEST(TraceBuffer, LabelInterningIsStable) {
  TraceBuffer buffer(16);
  EXPECT_EQ(buffer.LabelName(0), "");
  const std::uint16_t a = buffer.InternLabel("GETATTR");
  const std::uint16_t b = buffer.InternLabel("LOOKUP");
  EXPECT_NE(a, b);
  EXPECT_EQ(buffer.InternLabel("GETATTR"), a);
  EXPECT_EQ(buffer.LabelName(a), "GETATTR");
  EXPECT_EQ(buffer.LabelName(b), "LOOKUP");
}

TEST_F(TracerFixture, EventsCarryClockAndPayload) {
  now_ = Seconds(3);
  tracer_.Rpc(EventType::kRpcSend, /*host=*/1, /*port=*/700, /*peer_host=*/2,
              /*peer_port=*/2049, /*xid=*/42, 100003, 4, "ACCESS");
  ASSERT_EQ(buffer_.size(), 1u);
  const Event& ev = buffer_.at(0);
  EXPECT_EQ(ev.time, Seconds(3));
  EXPECT_EQ(ev.type, EventType::kRpcSend);
  EXPECT_EQ(ev.host, 1u);
  EXPECT_EQ(ev.port, 700u);
  EXPECT_EQ(ev.u.rpc.xid, 42u);
  EXPECT_EQ(buffer_.LabelName(ev.u.rpc.label), "ACCESS");
}

// ---------------------------------------------------------------------------
// Chrome trace exporter
// ---------------------------------------------------------------------------

TEST_F(TracerFixture, ExporterRendersRpcSpansAndInstants) {
  now_ = Milliseconds(10);
  tracer_.Rpc(EventType::kRpcSend, 1, 700, 0, 2049, 7, 100003, 1, "GETATTR");
  now_ = Milliseconds(14);
  tracer_.Rpc(EventType::kRpcRetransmit, 1, 700, 0, 2049, 7, 100003, 1,
              "GETATTR");
  now_ = Milliseconds(50);
  tracer_.Rpc(EventType::kRpcReply, 1, 700, 0, 2049, 7, 100003, 1, "GETATTR");
  now_ = Milliseconds(60);
  tracer_.Deleg(EventType::kDelegGrant, 0, 1, 5, 2, 1, kDelegFlagServerSide, 0);

  ChromeTraceWriter writer;
  ChromeTraceOptions options;
  options.host_names = {"server", "c0"};
  writer.Add(buffer_, options);
  std::ostringstream out;
  writer.Write(out);
  const std::string json = out.str();

  // A complete ("X") span for the RPC, 40 ms long, with the retransmit
  // counted; an instant ("i") for the grant; process metadata for the hosts.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"GETATTR\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":40000"), std::string::npos);
  EXPECT_NE(json.find("\"retransmits\":1"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("DELEG_GRANT"), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("c0"), std::string::npos);
  // The array must be well-formed enough to end properly.
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), '\n');
}

TEST_F(TracerFixture, TimelineDumpListsEveryEvent) {
  now_ = Seconds(1);
  tracer_.Inv(EventType::kInvAppend, 0, 1, 9, 4, 2, 3);
  now_ = Seconds(2);
  tracer_.Cache(EventType::kCacheHit, 3, 1, 9, kNoOffset, "GETATTR");
  std::ostringstream out;
  WriteTimeline(buffer_, out, {"server"});
  const std::string text = out.str();
  EXPECT_NE(text.find("INV_APPEND"), std::string::npos);
  EXPECT_NE(text.find("CACHE_HIT"), std::string::npos);
  EXPECT_NE(text.find("GETATTR"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Invariant checker on synthetic streams
// ---------------------------------------------------------------------------

class CheckerFixture : public TracerFixture {
 protected:
  std::vector<Violation> Check() {
    return TraceChecker(proxy::NfsTraceCheckerConfig()).Check(buffer_);
  }

  /// Server-side grant bookkeeping event, as ProxyServer records it.
  void ServerGrant(HostId server, HostId client, std::uint32_t type) {
    tracer_.Deleg(EventType::kDelegGrant, server, 1, 5, type, client,
                  kDelegFlagServerSide, 0);
  }
  void ServerRelease(HostId server, HostId client) {
    tracer_.Deleg(EventType::kDelegRelease, server, 1, 5, 0, client,
                  kDelegFlagServerSide, 0);
  }
};

TEST_F(CheckerFixture, CleanStreamHasNoViolations) {
  ServerGrant(0, 1, 2);
  ServerRelease(0, 1);
  ServerGrant(0, 2, 2);
  EXPECT_TRUE(Check().empty());
}

TEST_F(CheckerFixture, DetectsConflictingWriteDelegations) {
  ServerGrant(0, 1, 2);
  ServerGrant(0, 2, 2);  // host 1 still holds write
  const auto violations = Check();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, InvariantKind::kConflictingDelegation);
  EXPECT_EQ(violations[0].event_index, 1u);
}

TEST_F(CheckerFixture, ReadBesideWriteConflicts) {
  ServerGrant(0, 1, 2);
  ServerGrant(0, 2, 1);  // read grant while a write is outstanding
  EXPECT_EQ(Check().size(), 1u);
}

TEST_F(CheckerFixture, ConcurrentReadsAreFine) {
  ServerGrant(0, 1, 1);
  ServerGrant(0, 2, 1);
  ServerGrant(0, 3, 1);
  EXPECT_TRUE(Check().empty());
}

TEST_F(CheckerFixture, ServerCrashForgetsGrants) {
  ServerGrant(0, 1, 2);
  tracer_.Node(EventType::kNodeCrash, 0);
  ServerGrant(0, 2, 2);  // rebuilt state after recovery, not a conflict
  EXPECT_TRUE(Check().empty());
}

TEST_F(CheckerFixture, DetectsStaleReadAfterPollInvalidation) {
  tracer_.Cache(EventType::kCacheMiss, 3, 1, 9, kNoOffset, "");
  tracer_.Inv(EventType::kInvPoll, 3, 1, 9, 17, 1, 0);
  tracer_.Cache(EventType::kCacheHit, 3, 1, 9, kNoOffset, "GETATTR");
  const auto violations = Check();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, InvariantKind::kStaleRead);
}

TEST_F(CheckerFixture, RefreshAfterInvalidationIsClean) {
  tracer_.Cache(EventType::kCacheMiss, 3, 1, 9, kNoOffset, "");
  tracer_.Inv(EventType::kInvPoll, 3, 1, 9, 17, 1, 0);
  tracer_.Cache(EventType::kCacheMiss, 3, 1, 9, kNoOffset, "");
  tracer_.Cache(EventType::kCacheHit, 3, 1, 9, kNoOffset, "GETATTR");
  EXPECT_TRUE(Check().empty());
}

TEST_F(CheckerFixture, ForceInvalidateCoversWholeCache) {
  tracer_.Cache(EventType::kCacheMiss, 3, 1, 9, kNoOffset, "");
  tracer_.Inv(EventType::kInvForce, 3, 0, 0, 17, 0, 0);
  tracer_.Cache(EventType::kCacheHit, 3, 1, 9, kNoOffset, "ACCESS");
  EXPECT_EQ(Check().size(), 1u);
}

TEST_F(CheckerFixture, DetectsRecallReplyWithoutWantedWriteBack) {
  tracer_.Deleg(EventType::kDelegRecall, 3, 1, 9, 2, 0,
                kDelegFlagHasWanted | kDelegFlagWantedDirty, 32768);
  tracer_.Deleg(EventType::kDelegRelease, 3, 1, 9, 2, 0, 0, 0);
  const auto violations = Check();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, InvariantKind::kRecallWriteBack);
}

TEST_F(CheckerFixture, WantedBlockWrittenBackBeforeReplyIsClean) {
  tracer_.Deleg(EventType::kDelegRecall, 3, 1, 9, 2, 0,
                kDelegFlagHasWanted | kDelegFlagWantedDirty, 32768);
  tracer_.Cache(EventType::kCacheWriteBack, 3, 1, 9, 32768, "WRITE");
  tracer_.Deleg(EventType::kDelegRelease, 3, 1, 9, 2, 0, 0, 0);
  EXPECT_TRUE(Check().empty());
}

TEST_F(CheckerFixture, CleanWantedBlockNeedsNoWriteBack) {
  // has_wanted but not dirty at recall time: replying without a write-back
  // is correct.
  tracer_.Deleg(EventType::kDelegRecall, 3, 1, 9, 2, 0, kDelegFlagHasWanted, 0);
  tracer_.Deleg(EventType::kDelegRelease, 3, 1, 9, 2, 0, 0, 0);
  EXPECT_TRUE(Check().empty());
}

TEST_F(CheckerFixture, DetectsNonIdempotentReexecution) {
  tracer_.Rpc(EventType::kRpcExec, 0, 2049, 3, 700, 42, nfs3::kProgram,
              nfs3::kCreate, "");
  tracer_.Rpc(EventType::kRpcExec, 0, 2049, 3, 700, 42, nfs3::kProgram,
              nfs3::kCreate, "");
  const auto violations = Check();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, InvariantKind::kDrcReexec);
}

TEST_F(CheckerFixture, IdempotentReexecutionIsAllowed) {
  tracer_.Rpc(EventType::kRpcExec, 0, 2049, 3, 700, 42, nfs3::kProgram,
              nfs3::kGetAttr, "");
  tracer_.Rpc(EventType::kRpcExec, 0, 2049, 3, 700, 42, nfs3::kProgram,
              nfs3::kGetAttr, "");
  EXPECT_TRUE(Check().empty());
}

TEST_F(CheckerFixture, DistinctXidsAreDistinctRequests) {
  tracer_.Rpc(EventType::kRpcExec, 0, 2049, 3, 700, 42, nfs3::kProgram,
              nfs3::kCreate, "");
  tracer_.Rpc(EventType::kRpcExec, 0, 2049, 3, 700, 43, nfs3::kProgram,
              nfs3::kCreate, "");
  EXPECT_TRUE(Check().empty());
}

TEST_F(CheckerFixture, FormatViolationsNamesInvariant) {
  ServerGrant(0, 1, 2);
  ServerGrant(0, 2, 2);
  const auto violations = Check();
  const std::string text = FormatViolations(violations);
  EXPECT_NE(text.find("conflicting-delegation"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Ring wraparound and truncation reporting
// ---------------------------------------------------------------------------

std::size_t CountOccurrences(const std::string& text,
                             const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

/// Overflows a small ring with `total` node events stamped 0..total-1.
void Overflow(TraceBuffer& buffer, int total) {
  SimTime now = 0;
  Tracer tracer(&buffer, &now);
  for (int i = 0; i < total; ++i) {
    now = i;
    tracer.Node(EventType::kNodeCrash, static_cast<HostId>(i % 7));
  }
}

TEST(TraceBuffer, SustainedOverflowAccountsEveryDrop) {
  constexpr std::size_t kCapacity = 8;
  constexpr int kTotal = 1000;
  TraceBuffer buffer(kCapacity);
  Overflow(buffer, kTotal);

  // Exact accounting across many wraps: every push beyond capacity is one
  // drop, never more, never fewer.
  EXPECT_EQ(buffer.size(), kCapacity);
  EXPECT_EQ(buffer.recorded(), static_cast<std::uint64_t>(kTotal));
  EXPECT_EQ(buffer.dropped(), buffer.recorded() - kCapacity);
  // The survivors are the newest kCapacity events, still in order.
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    EXPECT_EQ(buffer.at(i).time,
              static_cast<SimTime>(kTotal - kCapacity + i));
  }

  // Clear resets both counters, so a reused ring cannot inherit stale
  // truncation state.
  buffer.Clear();
  EXPECT_EQ(buffer.recorded(), 0u);
  EXPECT_EQ(buffer.dropped(), 0u);
  Overflow(buffer, static_cast<int>(kCapacity));
  EXPECT_EQ(buffer.dropped(), 0u);
}

TEST(TraceTruncation, ExporterEmitsOneTruncationInstantPerAdd) {
  TraceBuffer buffer(4);
  Overflow(buffer, 10);

  ChromeTraceWriter writer;
  writer.Add(buffer, {});
  std::ostringstream once;
  writer.Write(once);
  EXPECT_EQ(CountOccurrences(once.str(), "TRACE_TRUNCATED"), 1u);
  // The instant carries the exact drop count, machine-readable.
  EXPECT_NE(once.str().find("\"dropped_events\":6"), std::string::npos);

  // A second Add (merging another buffer view) reports its own truncation:
  // one instant per truncated buffer added, not one per writer.
  writer.Add(buffer, {});
  std::ostringstream twice;
  writer.Write(twice);
  EXPECT_EQ(CountOccurrences(twice.str(), "TRACE_TRUNCATED"), 2u);
}

TEST(TraceTruncation, ExporterStaysSilentWithoutOverflow) {
  TraceBuffer buffer(16);
  Overflow(buffer, 10);
  ChromeTraceWriter writer;
  writer.Add(buffer, {});
  std::ostringstream out;
  writer.Write(out);
  EXPECT_EQ(CountOccurrences(out.str(), "TRACE_TRUNCATED"), 0u);
}

TEST(TraceTruncation, TimelineWarnsOncePerCall) {
  TraceBuffer buffer(4);
  Overflow(buffer, 10);
  std::ostringstream out;
  WriteTimeline(buffer, out, {});
  EXPECT_EQ(CountOccurrences(out.str(), "WARNING: trace buffer overflowed"),
            1u);
  EXPECT_NE(out.str().find("6 oldest events dropped"), std::string::npos);

  // The warning precedes the surviving events, so a reader sees the caveat
  // before trusting the timeline.
  EXPECT_LT(out.str().find("WARNING"), out.str().find("NODE_CRASH"));
}

TEST(TraceTruncation, CheckerRecordsExactlyOneTruncationWarning) {
  TraceBuffer buffer(4);
  Overflow(buffer, 10);
  TraceChecker checker(proxy::NfsTraceCheckerConfig());
  (void)checker.Check(buffer);
  ASSERT_EQ(checker.warnings().size(), 1u);
  EXPECT_NE(checker.warnings()[0].find("6 oldest events dropped"),
            std::string::npos);

  // Re-running the same checker must not accumulate duplicates: warnings
  // describe the latest Check, not the checker's lifetime.
  (void)checker.Check(buffer);
  EXPECT_EQ(checker.warnings().size(), 1u);
}

// ---------------------------------------------------------------------------
// Seeded violation, end to end
// ---------------------------------------------------------------------------

TEST(SeededViolation, SkippedRecallsAreCaughtByChecker) {
  using kclient::OpenFlags;
  using workloads::Testbed;
  constexpr OpenFlags kCreateWrite{.read = true, .write = true, .create = true};

  Testbed bed;
  bed.AddWanClient();
  bed.AddWanClient();
  TraceBuffer& buffer = bed.EnableTracing();

  proxy::SessionConfig config;
  config.model = proxy::ConsistencyModel::kDelegationCallback;
  config.cache_mode = proxy::CacheMode::kWriteBack;
  config.wb_flush_period = 0;
  // Fault injection: the server grants write delegations without recalling
  // the conflicting holder first.
  config.unsafe_skip_recalls = true;
  kclient::MountOptions noac;
  noac.noac = true;
  auto& session = bed.CreateSession(config, {0, 1}, noac);

  // Client 0 acquires a write delegation...
  auto fd0 = RunTask(bed.sched(), session.mount(0).Open("/f", kCreateWrite));
  ASSERT_TRUE(fd0.has_value());
  (void)RunTask(bed.sched(), session.mount(0).Write(*fd0, 0, Bytes(1024, 1)));
  // ...and client 1 then writes the same file. With recalls skipped the
  // server hands out a second write delegation while the first is live.
  auto fd1 = RunTask(bed.sched(), session.mount(1).Open("/f", kCreateWrite));
  ASSERT_TRUE(fd1.has_value());
  (void)RunTask(bed.sched(), session.mount(1).Write(*fd1, 0, Bytes(1024, 2)));

  ASSERT_EQ(buffer.dropped(), 0u);
  const auto violations =
      TraceChecker(proxy::NfsTraceCheckerConfig()).Check(buffer);
  ASSERT_FALSE(violations.empty())
      << "checker missed the deliberately conflicting write delegations";
  EXPECT_EQ(violations[0].kind, InvariantKind::kConflictingDelegation);
}

}  // namespace
}  // namespace gvfs::trace
