// Shared helpers for driving coroutines to completion on a test scheduler.
//
// RunTask steps the scheduler only until the given task completes (rather
// than draining the queue), because sessions keep persistent background
// processes (invalidation pollers, write-back flushers) alive indefinitely.
#pragma once

#include <optional>

#include "sim/scheduler.h"
#include "sim/task.h"

namespace gvfs::testutil {

template <typename T>
sim::Task<void> CaptureInto(sim::Task<T> task, std::optional<T>* out) {
  *out = co_await std::move(task);
}

/// Spawns `task` and steps the scheduler until it completes.
template <typename T>
T RunTask(sim::Scheduler& sched, sim::Task<T> task) {
  std::optional<T> out;
  sim::Spawn(CaptureInto(std::move(task), &out));
  while (!out.has_value() && !sched.Idle()) sched.Run(1);
  if (!out.has_value()) {
    ADD_FAILURE() << "task did not complete (event queue drained)";
    std::abort();
  }
  return std::move(*out);
}

inline sim::Task<void> MarkDone(sim::Task<void> task, bool* done) {
  co_await std::move(task);
  *done = true;
}

/// void overload.
inline void RunTask(sim::Scheduler& sched, sim::Task<void> task) {
  bool done = false;
  sim::Spawn(MarkDone(std::move(task), &done));
  while (!done && !sched.Idle()) sched.Run(1);
  if (!done) {
    ADD_FAILURE() << "task did not complete (event queue drained)";
    std::abort();
  }
}

}  // namespace gvfs::testutil
