// Trace-checker test oracle: enable tracing on a Testbed in the fixture
// constructor, call ExpectTraceClean from TearDown, and every scenario in
// the suite is checked against the protocol invariants (checker.h) over its
// whole event history — not just its end state.
//
// Kept separate from test_util.h so suites below the workloads layer can
// keep using that header without linking the testbed.
#pragma once

#include <gtest/gtest.h>

#include "gvfs/proto.h"
#include "trace/checker.h"
#include "workloads/testbed.h"

namespace gvfs::testutil {

/// Replays the testbed's trace buffer through the invariant checker and
/// fails the current test on any violation. No-op when tracing was never
/// enabled on this testbed.
inline void ExpectTraceClean(workloads::Testbed& bed) {
  trace::TraceBuffer* buffer = bed.trace_buffer();
  if (buffer == nullptr) return;
  // A wrapped ring would hide the events the checker pairs against; the
  // oracle only vouches for complete histories.
  EXPECT_EQ(buffer->dropped(), 0u)
      << "trace buffer wrapped; raise EnableTracing() capacity";
  const auto violations =
      trace::TraceChecker(proxy::NfsTraceCheckerConfig()).Check(*buffer);
  EXPECT_TRUE(violations.empty()) << trace::FormatViolations(violations);
}

}  // namespace gvfs::testutil
