// Cross-stack integration edge cases: large directories over RPC, rename
// cache semantics, bandwidth contention, concurrent multi-client traffic,
// and end-to-end data integrity through every cache layer.
#include <gtest/gtest.h>

#include "test_util.h"
#include "workloads/testbed.h"

namespace gvfs::workloads {
namespace {

using kclient::MountOptions;
using kclient::OpenFlags;
using nfs3::Status;
using proxy::CacheMode;
using proxy::ConsistencyModel;
using proxy::SessionConfig;
using testutil::RunTask;

constexpr OpenFlags kRead{};
constexpr OpenFlags kCreateWrite{.read = true, .write = true, .create = true};

TEST(IntegrationTest, LargeDirectoryListsAcrossPages) {
  // > 256 entries forces READDIR pagination over the wire.
  Testbed bed;
  bed.AddWanClient();
  auto dir = bed.fs().Mkdir(bed.fs().root(), "big", 0755);
  for (int i = 0; i < 700; ++i) {
    ASSERT_TRUE(bed.fs().Create(*dir, "e" + std::to_string(i), 0644).has_value());
  }
  auto& mount = bed.NativeMount(0);
  auto names = RunTask(bed.sched(), mount.ReadDir("/big"));
  ASSERT_TRUE(names.has_value());
  EXPECT_EQ(names->size(), 700u);
  EXPECT_GE(bed.StatsOf(mount).Calls("READDIR"), 3u);  // paginated
}

TEST(IntegrationTest, ReaddirRefreshHandlesLargeDirectories) {
  // The proxy's READDIR-based name-cache rebuild must paginate too.
  Testbed bed;
  bed.AddWanClient();
  bed.AddWanClient();
  SessionConfig config;
  config.model = ConsistencyModel::kInvalidationPolling;
  config.poll_period = Seconds(10);
  config.poll_max_period = Seconds(10);
  MountOptions kernel;
  kernel.attr_timeout = Seconds(1);  // so kernel caches don't mask the proxy
  auto& session = bed.CreateSession(config, {0, 1}, kernel);

  auto dir = bed.fs().Mkdir(bed.fs().root(), "big", 0755);
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(bed.fs().Create(*dir, "e" + std::to_string(i), 0644).has_value());
  }
  auto& a = session.mount(0);
  auto& b = session.mount(1);

  // b warms part of the namespace.
  for (int i = 0; i < 600; i += 50) {
    (void)RunTask(bed.sched(), b.Stat("/big/e" + std::to_string(i)));
  }
  // a adds one entry (directory changes) through the session; b learns of it
  // at the next poll.
  auto fd = RunTask(bed.sched(), a.Open("/big/new", kCreateWrite));
  ASSERT_TRUE(fd.has_value());
  (void)RunTask(bed.sched(), a.Close(*fd));
  bool waited = false;
  sim::Spawn(testutil::MarkDone(
      [](sim::Scheduler* sched) -> sim::Task<void> {
        co_await sim::Sleep(*sched, Seconds(12));
      }(&bed.sched()),
      &waited));
  while (!waited && !bed.sched().Idle()) bed.sched().Run(1);

  const auto readdirs_before = session.stats->Calls("READDIR");
  const auto lookups_before = session.stats->Calls("LOOKUP");
  // b's next stats trigger one paginated READDIR rebuild instead of
  // re-LOOKUP-ing every warmed name.
  for (int i = 0; i < 600; i += 50) {
    auto attr = RunTask(bed.sched(), b.Stat("/big/e" + std::to_string(i)));
    EXPECT_TRUE(attr.has_value());
  }
  EXPECT_TRUE(*RunTask(bed.sched(), b.Exists("/big/new")));
  EXPECT_GE(session.stats->Calls("READDIR") - readdirs_before, 3u);  // 601/256
  EXPECT_LE(session.stats->Calls("LOOKUP") - lookups_before, 2u);
}

TEST(IntegrationTest, BandwidthContentionSerializesTransfers) {
  // Two clients pulling large files over separate 4 Mbps links finish in
  // parallel; one client pulling both over its single link takes ~2x.
  Testbed bed;
  bed.AddWanClient();
  bed.AddWanClient();
  for (int i = 0; i < 2; ++i) {
    auto ino = bed.fs().Create(bed.fs().root(), "big" + std::to_string(i), 0644);
    ASSERT_TRUE(bed.fs().Write(*ino, 0, Bytes(2 * 1024 * 1024, 1)).has_value());
  }
  auto& a = bed.NativeMount(0);
  auto& b = bed.NativeMount(1);

  const SimTime start = bed.sched().Now();
  auto read_file = [](kclient::KernelClient* mount, std::string path) -> sim::Task<void> {
    auto fd = co_await mount->Open(path, OpenFlags{});
    if (!fd) co_return;
    for (std::uint64_t off = 0; off < 2 * 1024 * 1024; off += 32 * 1024) {
      (void)co_await mount->Read(*fd, off, 32 * 1024);
    }
    (void)co_await mount->Close(*fd);
  };
  bool d1 = false, d2 = false;
  sim::Spawn(testutil::MarkDone(read_file(&a, "/big0"), &d1));
  sim::Spawn(testutil::MarkDone(read_file(&b, "/big1"), &d2));
  while (!(d1 && d2) && !bed.sched().Idle()) bed.sched().Run(1);
  const double parallel_seconds = ToSeconds(bed.sched().Now() - start);
  // 2 MB at 4 Mbps ~= 4.2 s serialized; both links run concurrently.
  EXPECT_LT(parallel_seconds, 8.0);
  EXPECT_GT(parallel_seconds, 4.0);
}

TEST(IntegrationTest, DataIntegrityThroughAllCacheLayers) {
  // A recognizable byte pattern written through kernel cache -> proxy disk
  // cache (write-back) -> flush -> server, then read back cold by another
  // client through its own two cache layers.
  Testbed bed;
  bed.AddWanClient();
  bed.AddWanClient();
  SessionConfig config;
  config.model = ConsistencyModel::kDelegationCallback;
  config.cache_mode = CacheMode::kWriteBack;
  MountOptions noac;
  noac.noac = true;
  auto& session = bed.CreateSession(config, {0, 1}, noac);

  // 100 KB pattern spanning multiple blocks, written in odd-sized chunks.
  Bytes pattern(100 * 1000);
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    pattern[i] = static_cast<std::uint8_t>((i * 31 + 7) & 0xff);
  }
  auto& a = session.mount(0);
  auto fd = RunTask(bed.sched(), a.Open("/blob", kCreateWrite));
  ASSERT_TRUE(fd.has_value());
  std::size_t off = 0;
  const std::size_t chunks[] = {1, 4097, 32768, 12345, 50789};
  for (std::size_t chunk : chunks) {
    const std::size_t len = std::min(chunk, pattern.size() - off);
    Bytes piece(pattern.begin() + static_cast<std::ptrdiff_t>(off),
                pattern.begin() + static_cast<std::ptrdiff_t>(off + len));
    auto wrote = RunTask(bed.sched(), a.Write(*fd, off, piece));
    ASSERT_TRUE(wrote.has_value());
    off += len;
  }
  // Fill the remainder.
  if (off < pattern.size()) {
    Bytes rest(pattern.begin() + static_cast<std::ptrdiff_t>(off), pattern.end());
    ASSERT_TRUE(RunTask(bed.sched(), a.Write(*fd, off, rest)).has_value());
  }
  (void)RunTask(bed.sched(), a.Close(*fd));

  auto& b = session.mount(1);
  auto fd_b = RunTask(bed.sched(), b.Open("/blob", kRead));
  ASSERT_TRUE(fd_b.has_value());
  Bytes got;
  while (got.size() < pattern.size()) {
    auto piece = RunTask(bed.sched(),
                         b.Read(*fd_b, got.size(), 32 * 1024));
    ASSERT_TRUE(piece.has_value());
    ASSERT_FALSE(piece->empty());
    got.insert(got.end(), piece->begin(), piece->end());
  }
  EXPECT_EQ(got, pattern);
}

TEST(IntegrationTest, RenameVisibleThroughSession) {
  Testbed bed;
  bed.AddWanClient();
  bed.AddWanClient();
  SessionConfig config;
  config.model = ConsistencyModel::kDelegationCallback;
  MountOptions noac;
  noac.noac = true;
  auto& session = bed.CreateSession(config, {0, 1}, noac);
  auto& a = session.mount(0);
  auto& b = session.mount(1);

  ASSERT_TRUE(bed.fs().Create(bed.fs().root(), "old", 0644).has_value());
  EXPECT_TRUE(*RunTask(bed.sched(), b.Exists("/old")));
  ASSERT_TRUE(RunTask(bed.sched(), a.Rename("/old", "/new")).has_value());
  EXPECT_FALSE(*RunTask(bed.sched(), b.Exists("/old")));
  EXPECT_TRUE(*RunTask(bed.sched(), b.Exists("/new")));
}

TEST(IntegrationTest, ManyClientsConcurrentIndependentWork) {
  // 6 clients in one session hammer disjoint subtrees concurrently; all
  // writes land correctly and no cross-client interference occurs.
  Testbed bed;
  std::vector<int> indices;
  for (int i = 0; i < 6; ++i) indices.push_back(bed.AddWanClient());
  SessionConfig config;
  config.model = ConsistencyModel::kInvalidationPolling;
  config.cache_mode = CacheMode::kWriteBack;
  config.wb_flush_period = Seconds(20);
  auto& session = bed.CreateSession(config, indices);

  auto worker = [](sim::Scheduler* sched, kclient::KernelClient* mount,
                   int id) -> sim::Task<void> {
    const std::string dir = "/w" + std::to_string(id);
    (void)co_await mount->Mkdir(dir);
    for (int i = 0; i < 10; ++i) {
      auto fd = co_await mount->Open(
          dir + "/f" + std::to_string(i),
          OpenFlags{.read = true, .write = true, .create = true});
      if (!fd) continue;
      (void)co_await mount->Write(*fd, 0, Bytes(1000, static_cast<std::uint8_t>(id)));
      (void)co_await mount->Close(*fd);
      co_await sim::Sleep(*sched, Seconds(1));
    }
  };
  std::vector<sim::Task<void>> tasks;
  for (int i = 0; i < 6; ++i) {
    tasks.push_back(worker(&bed.sched(), &session.mount(i), i));
  }
  bool done = false;
  sim::Spawn(testutil::MarkDone(sim::WhenAll(bed.sched(), std::move(tasks)), &done));
  while (!done && !bed.sched().Idle()) bed.sched().Run(1);
  ASSERT_TRUE(done);

  // Drain write-back, then check server-side contents.
  for (auto* proxy : session.proxies) {
    bool flushed = false;
    sim::Spawn(testutil::MarkDone(proxy->FlushAll(), &flushed));
    while (!flushed && !bed.sched().Idle()) bed.sched().Run(1);
  }
  for (int id = 0; id < 6; ++id) {
    for (int i = 0; i < 10; ++i) {
      auto ino =
          bed.fs().ResolvePath("/w" + std::to_string(id) + "/f" + std::to_string(i));
      ASSERT_TRUE(ino.has_value()) << id << " " << i;
      auto data = bed.fs().Read(*ino, 0, 1000);
      ASSERT_TRUE(data.has_value());
      EXPECT_EQ(data->data[0], id);
    }
  }
}

}  // namespace
}  // namespace gvfs::workloads
