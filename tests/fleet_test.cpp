// Fleet-scale serving tests: shard routing, cross-shard NOTIFYINV
// forwarding, the GETINV aggregation tier's fan-out, and the overflow /
// escalation paths (whole-cache invalidation) both direct and through the
// tier. Positive scenarios double as TraceChecker runs over their full
// event history; the fault-injection suite proves the checker actually
// catches a lost or duplicated invalidation crossing the tier.
#include <gtest/gtest.h>

#include "fleet/inv_aggregator.h"
#include "fleet/shard_router.h"
#include "test_util.h"
#include "trace_oracle.h"
#include "workloads/testbed.h"

namespace gvfs::workloads {
namespace {

using kclient::OpenFlags;
using testutil::RunTask;

constexpr OpenFlags kRead{};
constexpr OpenFlags kReadWrite{.read = true, .write = true};
constexpr OpenFlags kCreateWrite{.read = true, .write = true, .create = true};

// ---------------------------------------------------------------------------
// ShardRouter
// ---------------------------------------------------------------------------

std::vector<net::Address> FakeShards(std::uint32_t n) {
  std::vector<net::Address> shards;
  for (std::uint32_t k = 0; k < n; ++k) {
    shards.push_back(net::Address{1, 5000 + k});
  }
  return shards;
}

TEST(ShardRouterTest, RoutingIsDeterministicAndInRange) {
  const fleet::ShardRouter router(FakeShards(4));
  for (std::uint64_t ino = 1; ino < 200; ++ino) {
    const nfs3::Fh fh{7, ino};
    const std::uint32_t index = router.IndexOf(fh);
    EXPECT_LT(index, 4u);
    EXPECT_EQ(index, router.IndexOf(fh));  // stable across calls
    EXPECT_EQ(router.AddressOf(fh).port, router.shards()[index].port);
    EXPECT_EQ(index, proxy::ShardOf(fh, 4));  // same map as the servers
  }
}

TEST(ShardRouterTest, SingleShardOwnsEverything) {
  const fleet::ShardRouter router(FakeShards(1));
  for (std::uint64_t ino = 1; ino < 50; ++ino) {
    EXPECT_EQ(router.IndexOf(nfs3::Fh{7, ino}), 0u);
  }
}

TEST(ShardRouterTest, DegenerateRoutersOwnEverything) {
  // A fleet of one (and the empty default) must collapse to the unsharded
  // map: index 0 for every handle, the whole probe space on one shard.
  const fleet::ShardRouter empty;
  EXPECT_EQ(empty.shard_count(), 0u);
  EXPECT_EQ(empty.IndexOf(nfs3::Fh{7, 123}), 0u);

  const fleet::ShardRouter single(FakeShards(1));
  for (std::uint64_t ino = 1; ino < 50; ++ino) {
    EXPECT_EQ(single.AddressOf(nfs3::Fh{7, ino}).port, 5000u);
  }
  const auto histogram = single.BalanceHistogram(7, 256);
  ASSERT_EQ(histogram.size(), 1u);
  EXPECT_EQ(histogram[0], 256u);
}

TEST(ShardRouterTest, HandlesSpreadAcrossShards) {
  const fleet::ShardRouter router(FakeShards(4));
  const auto histogram = router.BalanceHistogram(7, 4096);
  ASSERT_EQ(histogram.size(), 4u);
  for (std::size_t count : histogram) {
    // Every shard owns a meaningful slice: no empty shard, no shard with
    // more than half the handle space.
    EXPECT_GT(count, 512u);
    EXPECT_LT(count, 2048u);
  }
}

// ---------------------------------------------------------------------------
// Fleet sessions (positive scenarios; trace-checked via TearDown)
// ---------------------------------------------------------------------------

class FleetTest : public ::testing::Test {
 protected:
  FleetTest() { bed_.EnableTracing(1 << 18); }

  void TearDown() override { testutil::ExpectTraceClean(bed_); }

  std::vector<int> AddClients(int n) {
    std::vector<int> ids;
    for (int i = 0; i < n; ++i) ids.push_back(bed_.AddWanClient());
    return ids;
  }

  static FleetConfig MakeConfig(std::uint32_t shards, bool aggregate,
                                Duration period = Seconds(10)) {
    FleetConfig config;
    config.shards = shards;
    config.aggregate = aggregate;
    config.session.model = proxy::ConsistencyModel::kInvalidationPolling;
    config.session.poll_period = period;
    config.session.poll_max_period = period;  // fixed cadence, no back-off
    config.aggregator.poll_period = period;
    return config;
  }

  sim::Task<void> Advance(Duration d) { co_await sim::Sleep(bed_.sched(), d); }

  /// Creates `files` distinct files through `mount` and writes one block to
  /// each (each write lands an invalidation on the owning shard).
  void DirtyFiles(kclient::KernelClient& mount, int files,
                  const std::string& stem = "f") {
    for (int f = 0; f < files; ++f) {
      auto fd = RunTask(bed_.sched(),
                        mount.Open("/" + stem + std::to_string(f), kCreateWrite));
      ASSERT_TRUE(fd.has_value());
      (void)RunTask(bed_.sched(), mount.Write(*fd, 0, Bytes(64, 1)));
      (void)RunTask(bed_.sched(), mount.Close(*fd));
    }
  }

  Testbed bed_;
};

TEST_F(FleetTest, CrossShardNotifyInvReachesTheOwner) {
  auto& session =
      bed_.CreateFleetSession(MakeConfig(4, /*aggregate=*/false), AddClients(2),
                              /*active_mounts=*/2);
  auto& a = session.mount(0);

  (void)RunTask(bed_.sched(), Advance(Seconds(15)));  // both proxies registered
  DirtyFiles(a, 6);
  // RENAME mutates the directory plus both name slots: with 4 shards the
  // handling shard regularly does not own every touched handle and must
  // forward with NOTIFYINV.
  for (int f = 0; f < 3; ++f) {
    auto renamed = RunTask(
        bed_.sched(),
        a.Rename("/f" + std::to_string(f), "/r" + std::to_string(f)));
    ASSERT_TRUE(renamed.has_value());
  }
  (void)RunTask(bed_.sched(), Advance(Seconds(25)));

  std::uint64_t sent = 0, received = 0, recorded = 0;
  for (std::size_t k = 0; k < 4; ++k) {
    sent += session.shard(k).stats().notifyinv_sent;
    received += session.shard(k).stats().notifyinv_received;
    recorded += session.shard(k).stats().invalidations_recorded;
  }
  EXPECT_GT(sent, 0u);
  EXPECT_EQ(sent, received);  // nothing forwarded into the void
  EXPECT_GT(recorded, 0u);
  // The peer actually observed the churn through its per-shard polls.
  EXPECT_GT(session.proxy(1).stats().invalidations_applied, 0u);
}

TEST_F(FleetTest, AggregatorCollapsesGetInvFanIn) {
  auto& session = bed_.CreateFleetSession(MakeConfig(1, /*aggregate=*/true),
                                          AddClients(8), /*active_mounts=*/1);
  auto& writer = session.mount(0);

  (void)RunTask(bed_.sched(), Advance(Seconds(15)));  // fleet registered
  DirtyFiles(writer, 5);
  (void)RunTask(bed_.sched(), Advance(Seconds(45)));

  const fleet::InvAggregatorStats& agg = session.aggregator->stats();
  EXPECT_EQ(session.aggregator->DownstreamClients(), 8u);
  EXPECT_GT(agg.handles_ingested, 0u);
  EXPECT_GT(agg.handles_delivered, 0u);
  // The tier's whole point: 8 clients' polls collapse into one upstream
  // stream, so the shard serves a small constant rate while the aggregator
  // absorbs the fan-in.
  EXPECT_EQ(session.shard(0).stats().getinv_served, agg.upstream_polls);
  EXPECT_GT(agg.getinv_served, 3 * agg.upstream_polls);
  // A passive client behind the tier still sees the writer's churn.
  EXPECT_GT(session.proxy(1).stats().invalidations_applied +
                session.proxy(1).stats().force_invalidations,
            0u);
}

TEST_F(FleetTest, RemoteChangeVisibleThroughTier) {
  auto& session = bed_.CreateFleetSession(MakeConfig(1, /*aggregate=*/true),
                                          AddClients(2), /*active_mounts=*/2);
  auto& a = session.mount(0);
  auto& b = session.mount(1);

  auto fd = RunTask(bed_.sched(), a.Open("/data", kCreateWrite));
  ASSERT_TRUE(fd.has_value());
  (void)RunTask(bed_.sched(), a.Write(*fd, 0, Bytes(10, 1)));
  (void)RunTask(bed_.sched(), a.Close(*fd));

  auto fd_b = RunTask(bed_.sched(), b.Open("/data", kRead));
  ASSERT_TRUE(fd_b.has_value());
  auto first = RunTask(bed_.sched(), b.Read(*fd_b, 0, 10));
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ((*first)[0], 1);

  (void)RunTask(bed_.sched(), Advance(Seconds(31)));  // kernel cache expired
  auto fd2 = RunTask(bed_.sched(), a.Open("/data", kReadWrite));
  ASSERT_TRUE(fd2.has_value());
  (void)RunTask(bed_.sched(), a.Write(*fd2, 0, Bytes(10, 2)));
  (void)RunTask(bed_.sched(), a.Close(*fd2));

  // Two hops now sit between the write and b's cache (shard -> aggregator
  // -> client), each on a 10 s period; 35 s covers both with slack.
  (void)RunTask(bed_.sched(), Advance(Seconds(35)));
  auto second = RunTask(bed_.sched(), b.Read(*fd_b, 0, 10));
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ((*second)[0], 2);
}

TEST_F(FleetTest, OverflowForcesWholeCacheInvalidationDirect) {
  FleetConfig config = MakeConfig(1, /*aggregate=*/false);
  config.session.inv_buffer_capacity = 4;
  auto& session =
      bed_.CreateFleetSession(config, AddClients(10), /*active_mounts=*/1);
  auto& writer = session.mount(0);

  (void)RunTask(bed_.sched(), Advance(Seconds(15)));  // everyone registered
  DirtyFiles(writer, 12);  // 12 distinct handles >> capacity 4
  (void)RunTask(bed_.sched(), Advance(Seconds(25)));

  EXPECT_GT(session.shard(0).stats().inv_wraps, 0u);
  EXPECT_GT(session.shard(0).stats().force_invalidations, 0u);
  std::uint64_t client_forces = 0;
  for (std::size_t i = 0; i < session.proxies.size(); ++i) {
    client_forces += session.proxy(i).stats().force_invalidations;
  }
  EXPECT_GT(client_forces, 0u);
}

TEST_F(FleetTest, OverflowEscalatesThroughTier) {
  FleetConfig config = MakeConfig(1, /*aggregate=*/true);
  config.aggregator.inv_buffer_capacity = 4;  // tier buffers, not the shard's
  auto& session =
      bed_.CreateFleetSession(config, AddClients(6), /*active_mounts=*/1);
  auto& writer = session.mount(0);

  (void)RunTask(bed_.sched(), Advance(Seconds(15)));
  DirtyFiles(writer, 12);
  (void)RunTask(bed_.sched(), Advance(Seconds(25)));

  const fleet::InvAggregatorStats& agg = session.aggregator->stats();
  // The tier's own buffers wrapped and it escalated: affected clients were
  // served a whole-cache invalidation, not a truncated handle list.
  EXPECT_GT(agg.inv_wraps, 0u);
  EXPECT_GT(agg.force_invalidations, 0u);
  std::uint64_t client_forces = 0;
  for (std::size_t i = 0; i < session.proxies.size(); ++i) {
    client_forces += session.proxy(i).stats().force_invalidations;
  }
  EXPECT_GT(client_forces, 0u);
}

TEST_F(FleetTest, UpstreamForceEscalatesThroughTier) {
  FleetConfig config = MakeConfig(1, /*aggregate=*/true);
  config.session.inv_buffer_capacity = 4;  // the SHARD's buffer wraps
  auto& session =
      bed_.CreateFleetSession(config, AddClients(4), /*active_mounts=*/1);
  auto& writer = session.mount(0);

  (void)RunTask(bed_.sched(), Advance(Seconds(15)));
  DirtyFiles(writer, 12);
  (void)RunTask(bed_.sched(), Advance(Seconds(25)));

  // The shard force-invalidated its one GETINV client — the aggregator —
  // which must not absorb the loss: every downstream client's stream breaks
  // and is re-bootstrapped with a whole-cache invalidation.
  const fleet::InvAggregatorStats& agg = session.aggregator->stats();
  EXPECT_GT(agg.upstream_forces, 0u);
  EXPECT_GT(agg.force_invalidations, 0u);
  std::uint64_t client_forces = 0;
  for (std::size_t i = 0; i < session.proxies.size(); ++i) {
    client_forces += session.proxy(i).stats().force_invalidations;
  }
  EXPECT_GT(client_forces, 0u);
}

// ---------------------------------------------------------------------------
// Degenerate fleet: shards=1, no tier. The fleet machinery must add no
// observable behavior over the plain unsharded session.
// ---------------------------------------------------------------------------

struct ChurnResult {
  std::vector<std::uint8_t> first_bytes;
  std::uint64_t applied = 0;
};

sim::Task<void> SleepFor(sim::Scheduler& sched, Duration d) {
  co_await sim::Sleep(sched, d);
}

/// Writer dirties three files, the poll period and kernel attr cache expire,
/// the reader reads them back; returns what the reader saw. Works on both
/// session flavors (mount()/proxy() are the shared surface).
template <typename SessionT>
ChurnResult RunChurn(Testbed& bed, SessionT& session) {
  auto& writer = session.mount(0);
  auto& reader = session.mount(1);
  (void)RunTask(bed.sched(), SleepFor(bed.sched(), Seconds(15)));
  for (int f = 0; f < 3; ++f) {
    auto fd = RunTask(bed.sched(),
                      writer.Open("/d" + std::to_string(f), kCreateWrite));
    EXPECT_TRUE(fd.has_value());
    (void)RunTask(
        bed.sched(),
        writer.Write(*fd, 0, Bytes(64, static_cast<std::uint8_t>(f + 1))));
    (void)RunTask(bed.sched(), writer.Close(*fd));
  }
  (void)RunTask(bed.sched(), SleepFor(bed.sched(), Seconds(35)));
  ChurnResult out;
  for (int f = 0; f < 3; ++f) {
    auto fd =
        RunTask(bed.sched(), reader.Open("/d" + std::to_string(f), kRead));
    EXPECT_TRUE(fd.has_value());
    auto data = RunTask(bed.sched(), reader.Read(*fd, 0, 64));
    EXPECT_TRUE(data.has_value());
    if (data.has_value() && !data->empty()) {
      out.first_bytes.push_back((*data)[0]);
    }
    (void)RunTask(bed.sched(), reader.Close(*fd));
  }
  out.applied = session.proxy(1).stats().invalidations_applied;
  (void)RunTask(bed.sched(), session.Shutdown());
  return out;
}

TEST_F(FleetTest, SingleShardFleetMatchesUnshardedSession) {
  auto& fleet = bed_.CreateFleetSession(MakeConfig(1, /*aggregate=*/false),
                                        AddClients(2), /*active_mounts=*/2);
  const ChurnResult sharded = RunChurn(bed_, fleet);

  Testbed solo;
  solo.EnableTracing(1 << 18);
  solo.AddWanClient();
  solo.AddWanClient();
  auto& plain = solo.CreateSession(MakeConfig(1, false).session, {0, 1});
  const ChurnResult unsharded = RunChurn(solo, plain);

  // shards=1 routes every handle to shard 0 and never forwards.
  EXPECT_EQ(fleet.shard(0).stats().notifyinv_sent, 0u);
  EXPECT_EQ(fleet.shard(0).stats().notifyinv_received, 0u);
  // The reader observes identical bytes and the same invalidation stream.
  EXPECT_EQ(sharded.first_bytes, unsharded.first_bytes);
  EXPECT_EQ(sharded.applied, unsharded.applied);
  testutil::ExpectTraceClean(solo);
}

// ---------------------------------------------------------------------------
// Fault injection: the kAggTier invariant must catch a tier that lies.
// (No clean-trace TearDown here — violations are the expected outcome.)
// ---------------------------------------------------------------------------

class FleetFaultTest : public ::testing::Test {
 protected:
  FleetFaultTest() { bed_.EnableTracing(1 << 18); }

  sim::Task<void> Advance(Duration d) { co_await sim::Sleep(bed_.sched(), d); }

  std::vector<trace::Violation> RunInjected(bool drop, bool duplicate) {
    FleetConfig config;
    config.shards = 1;
    config.aggregate = true;
    config.session.model = proxy::ConsistencyModel::kInvalidationPolling;
    config.session.poll_period = Seconds(10);
    config.session.poll_max_period = Seconds(10);
    config.aggregator.poll_period = Seconds(10);
    config.aggregator.unsafe_drop_fanout = drop;
    config.aggregator.unsafe_duplicate_fanout = duplicate;

    std::vector<int> members;
    for (int i = 0; i < 3; ++i) members.push_back(bed_.AddWanClient());
    auto& session = bed_.CreateFleetSession(config, members,
                                            /*active_mounts=*/1);
    auto& writer = session.mount(0);

    (void)RunTask(bed_.sched(), Advance(Seconds(15)));
    for (int f = 0; f < 4; ++f) {
      auto fd = RunTask(bed_.sched(),
                        writer.Open("/f" + std::to_string(f), kCreateWrite));
      EXPECT_TRUE(fd.has_value());
      (void)RunTask(bed_.sched(), writer.Write(*fd, 0, Bytes(64, 1)));
      (void)RunTask(bed_.sched(), writer.Close(*fd));
    }
    (void)RunTask(bed_.sched(), Advance(Seconds(25)));

    EXPECT_EQ(bed_.trace_buffer()->dropped(), 0u);
    return trace::TraceChecker(proxy::NfsTraceCheckerConfig())
        .Check(*bed_.trace_buffer());
  }

  Testbed bed_;
};

TEST_F(FleetFaultTest, DroppedFanoutIsCaught) {
  const auto violations = RunInjected(/*drop=*/true, /*duplicate=*/false);
  EXPECT_FALSE(violations.empty())
      << "a fan-out silently skipped a registered client and the checker "
         "did not notice";
}

TEST_F(FleetFaultTest, DuplicatedFanoutIsCaught) {
  const auto violations = RunInjected(/*drop=*/false, /*duplicate=*/true);
  EXPECT_FALSE(violations.empty())
      << "a handle was fanned out twice to one client and the checker did "
         "not notice";
}

}  // namespace
}  // namespace gvfs::workloads
