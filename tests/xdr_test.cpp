#include <gtest/gtest.h>

#include "xdr/xdr.h"

namespace gvfs::xdr {
namespace {

TEST(XdrTest, U32RoundTrip) {
  Encoder enc;
  enc.PutU32(0xdeadbeef);
  EXPECT_EQ(enc.size(), 4u);
  Decoder dec(enc.bytes());
  auto v = dec.GetU32();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 0xdeadbeefu);
  EXPECT_TRUE(dec.AtEnd());
}

TEST(XdrTest, U32BigEndianWire) {
  Encoder enc;
  enc.PutU32(0x01020304);
  const Bytes& b = enc.bytes();
  EXPECT_EQ(b[0], 0x01);
  EXPECT_EQ(b[1], 0x02);
  EXPECT_EQ(b[2], 0x03);
  EXPECT_EQ(b[3], 0x04);
}

TEST(XdrTest, I32Negative) {
  Encoder enc;
  enc.PutI32(-12345);
  Decoder dec(enc.bytes());
  auto v = dec.GetI32();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, -12345);
}

TEST(XdrTest, U64RoundTrip) {
  Encoder enc;
  enc.PutU64(0x0123456789abcdefULL);
  EXPECT_EQ(enc.size(), 8u);
  Decoder dec(enc.bytes());
  auto v = dec.GetU64();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 0x0123456789abcdefULL);
}

TEST(XdrTest, I64Negative) {
  Encoder enc;
  enc.PutI64(-9'000'000'000LL);
  Decoder dec(enc.bytes());
  auto v = dec.GetI64();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, -9'000'000'000LL);
}

TEST(XdrTest, BoolRoundTrip) {
  Encoder enc;
  enc.PutBool(true);
  enc.PutBool(false);
  Decoder dec(enc.bytes());
  EXPECT_TRUE(*dec.GetBool());
  EXPECT_FALSE(*dec.GetBool());
}

TEST(XdrTest, BoolRejectsOutOfRange) {
  Encoder enc;
  enc.PutU32(2);
  Decoder dec(enc.bytes());
  auto v = dec.GetBool();
  ASSERT_FALSE(v.has_value());
  EXPECT_EQ(v.error(), DecodeError::kBadValue);
}

TEST(XdrTest, OpaquePadding) {
  Encoder enc;
  Bytes payload = {1, 2, 3, 4, 5};
  enc.PutOpaque(payload);
  // 4 (length) + 5 (data) + 3 (pad) = 12
  EXPECT_EQ(enc.size(), 12u);
  Decoder dec(enc.bytes());
  auto v = dec.GetOpaque();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->Copy(), payload);
  EXPECT_TRUE(dec.AtEnd());
}

TEST(XdrTest, EmptyOpaque) {
  Encoder enc;
  enc.PutOpaque(Bytes{});
  EXPECT_EQ(enc.size(), 4u);
  Decoder dec(enc.bytes());
  auto v = dec.GetOpaque();
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->empty());
}

TEST(XdrTest, FixedOpaqueNoLengthPrefix) {
  Encoder enc;
  std::uint8_t data[6] = {9, 8, 7, 6, 5, 4};
  enc.PutFixedOpaque(data, 6);
  EXPECT_EQ(enc.size(), 8u);  // 6 + 2 pad
  Decoder dec(enc.bytes());
  auto v = dec.GetFixedOpaque(6);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ((*v)[0], 9);
  EXPECT_EQ((*v)[5], 4);
  EXPECT_TRUE(dec.AtEnd());
}

TEST(XdrTest, StringRoundTrip) {
  Encoder enc;
  enc.PutString("hello, xdr");
  Decoder dec(enc.bytes());
  auto v = dec.GetString();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "hello, xdr");
}

TEST(XdrTest, TruncatedU32) {
  Bytes short_buf = {1, 2, 3};
  Decoder dec(short_buf);
  auto v = dec.GetU32();
  ASSERT_FALSE(v.has_value());
  EXPECT_EQ(v.error(), DecodeError::kTruncated);
}

TEST(XdrTest, TruncatedOpaqueBody) {
  Encoder enc;
  enc.PutU32(100);  // claims 100 bytes follow; none do
  Decoder dec(enc.bytes());
  auto v = dec.GetOpaque();
  ASSERT_FALSE(v.has_value());
  EXPECT_EQ(v.error(), DecodeError::kTruncated);
}

TEST(XdrTest, MixedSequenceRoundTrip) {
  Encoder enc;
  enc.PutU32(7);
  enc.PutString("name");
  enc.PutU64(1ULL << 40);
  enc.PutBool(true);
  enc.PutOpaque(Bytes{0xff});

  Decoder dec(enc.bytes());
  EXPECT_EQ(*dec.GetU32(), 7u);
  EXPECT_EQ(*dec.GetString(), "name");
  EXPECT_EQ(*dec.GetU64(), 1ULL << 40);
  EXPECT_TRUE(*dec.GetBool());
  EXPECT_EQ((*dec.GetOpaque())[0], 0xff);
  EXPECT_TRUE(dec.AtEnd());
}

TEST(XdrTest, RemainingCount) {
  Encoder enc;
  enc.PutU32(1);
  enc.PutU32(2);
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.remaining(), 8u);
  (void)dec.GetU32();
  EXPECT_EQ(dec.remaining(), 4u);
}

// Property-style sweep: encode/decode random payload sizes, verify padding
// invariants hold for every size.
class XdrOpaqueSweep : public ::testing::TestWithParam<int> {};

TEST_P(XdrOpaqueSweep, SizeAlwaysMultipleOfFour) {
  const int n = GetParam();
  Bytes payload(static_cast<std::size_t>(n), 0xab);
  Encoder enc;
  enc.PutOpaque(payload);
  EXPECT_EQ(enc.size() % 4, 0u);
  Decoder dec(enc.bytes());
  auto v = dec.GetOpaque();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->Copy(), payload);
  EXPECT_TRUE(dec.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(AllResidues, XdrOpaqueSweep,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 31, 32, 33, 1024,
                                           4095, 4096, 4097));

// --- Truncation property sweep -------------------------------------------
// Every getter, offered every strictly-short prefix of a valid encoding,
// must report kTruncated (GetRaw: nullptr) and never read past the buffer
// (the sanitizer job enforces the second half). At the exact length each
// must succeed with the original value.

TEST(XdrTruncationSweep, EveryGetterEveryShortPrefix) {
  Encoder enc;
  enc.PutU32(0xdeadbeef);
  enc.PutU64(0x0123456789abcdefULL);
  enc.PutBool(true);
  Bytes payload = {1, 2, 3, 4, 5};
  enc.PutOpaque(payload);
  enc.PutString("hello");
  const Bytes& wire = enc.bytes();

  for (std::size_t len = 0; len < wire.size(); ++len) {
    Decoder dec(wire.data(), len);
    bool truncated = false;
    auto u32 = dec.GetU32();
    if (!u32.has_value()) {
      EXPECT_EQ(u32.error(), DecodeError::kTruncated);
      truncated = true;
    }
    if (!truncated) {
      auto u64 = dec.GetU64();
      if (!u64.has_value()) {
        EXPECT_EQ(u64.error(), DecodeError::kTruncated);
        truncated = true;
      }
    }
    if (!truncated) {
      auto b = dec.GetBool();
      if (!b.has_value()) {
        EXPECT_EQ(b.error(), DecodeError::kTruncated);
        truncated = true;
      }
    }
    if (!truncated) {
      auto op = dec.GetOpaque();
      if (!op.has_value()) {
        EXPECT_EQ(op.error(), DecodeError::kTruncated);
        truncated = true;
      }
    }
    if (!truncated) {
      auto s = dec.GetString();
      if (!s.has_value()) {
        EXPECT_EQ(s.error(), DecodeError::kTruncated);
        truncated = true;
      }
    }
    // A strict prefix can never decode the full sequence.
    EXPECT_TRUE(truncated) << "prefix of " << len << " bytes decoded fully";
  }

  // The untruncated wire decodes to exactly what went in.
  Decoder dec(wire);
  EXPECT_EQ(dec.GetU32().value_or(0), 0xdeadbeefu);
  EXPECT_EQ(dec.GetU64().value_or(0), 0x0123456789abcdefULL);
  EXPECT_EQ(dec.GetBool().value_or(false), true);
  auto op = dec.GetOpaque();
  ASSERT_TRUE(op.has_value());
  EXPECT_EQ(op->Copy(), payload);
  auto s = dec.GetString();
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->Copy(), "hello");
  EXPECT_TRUE(dec.AtEnd());
}

TEST(XdrTruncationSweep, GetFixedOpaqueShortBuffer) {
  Bytes wire = {1, 2, 3, 4, 5, 6, 7};  // not a multiple of 4: 8 needed
  for (std::size_t want : {8u, 12u, 100u}) {
    Decoder dec(wire);
    auto v = dec.GetFixedOpaque(want);
    ASSERT_FALSE(v.has_value()) << want;
    EXPECT_EQ(v.error(), DecodeError::kTruncated);
  }
}

TEST(XdrTruncationSweep, GetRawShortBuffer) {
  Bytes wire = {1, 2, 3, 4};
  for (std::size_t len = 0; len <= wire.size(); ++len) {
    Decoder dec(wire.data(), len);
    const std::uint8_t* p = dec.GetRaw(len + 1);  // one past what's there
    EXPECT_EQ(p, nullptr);
    EXPECT_EQ(dec.pos(), 0u) << "failed GetRaw must not consume";
    if (len > 0) {
      EXPECT_NE(dec.GetRaw(len), nullptr);  // exact fit succeeds
      EXPECT_TRUE(dec.AtEnd());
    }
  }
}

// --- Fixed-layout window round trips --------------------------------------
// Reserve/StoreBe must be byte-identical to the per-field Put path, and
// GetRaw/LoadBe must read back what Put wrote: the fused header writers in
// rpc.cpp and proto.cpp rely on the two paths being interchangeable on the
// wire.

TEST(XdrFixedWindow, ReserveStoreMatchesPut) {
  Encoder put;
  put.PutU32(0x01020304);
  put.PutU64(0x1122334455667788ULL);
  put.PutU32(7);

  Encoder fused;
  std::uint8_t* w = fused.Reserve(16);
  Encoder::StoreBe32(w, 0x01020304);
  Encoder::StoreBe64(w + 4, 0x1122334455667788ULL);
  Encoder::StoreBe32(w + 12, 7);

  EXPECT_EQ(put.bytes(), fused.bytes());
}

TEST(XdrFixedWindow, LoadBeMatchesGet) {
  Encoder enc;
  enc.PutU32(0xcafef00d);
  enc.PutU64(0x8000000000000001ULL);
  Decoder dec(enc.bytes());
  const std::uint8_t* r = dec.GetRaw(12);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(Decoder::LoadBe32(r), 0xcafef00du);
  EXPECT_EQ(Decoder::LoadBe64(r + 4), 0x8000000000000001ULL);
  EXPECT_TRUE(dec.AtEnd());
}

TEST(XdrFixedWindow, ReserveInterleavesWithPuts) {
  Encoder enc;
  enc.PutU32(1);
  std::uint8_t* w = enc.Reserve(8);
  Encoder::StoreBe64(w, 2);
  enc.PutU32(3);

  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.GetU32().value_or(0), 1u);
  EXPECT_EQ(dec.GetU64().value_or(0), 2u);
  EXPECT_EQ(dec.GetU32().value_or(0), 3u);
  EXPECT_TRUE(dec.AtEnd());
}

}  // namespace
}  // namespace gvfs::xdr
