// Integration tests for the workload generators, using small configurations
// so each scenario completes quickly while still exercising the full stack
// (kernel client -> [proxies] -> NFS server) over the simulated WAN.
#include <gtest/gtest.h>

#include "test_util.h"
#include "workloads/ch1d.h"
#include "workloads/lock_bench.h"
#include "workloads/make_bench.h"
#include "workloads/nanomos.h"
#include "workloads/postmark.h"
#include "workloads/testbed.h"

namespace gvfs::workloads {
namespace {

using proxy::CacheMode;
using proxy::ConsistencyModel;
using proxy::SessionConfig;
using testutil::RunTask;

MakeConfig SmallMake() {
  MakeConfig config;
  config.sources = 30;
  config.headers = 10;
  config.objects = 15;
  config.headers_per_object = 4;
  config.compile_cpu = Milliseconds(100);
  config.link_cpu = Milliseconds(500);
  return config;
}

TEST(MakeBenchTest, RunsOnNativeNfs) {
  Testbed bed;
  bed.AddWanClient();
  PopulateMakeTree(bed.fs(), SmallMake());
  auto& mount = bed.NativeMount(0);
  auto report = RunTask(bed.sched(), RunMake(bed.sched(), mount, SmallMake()));
  EXPECT_TRUE(report.ok);
  EXPECT_GT(report.RuntimeSeconds(), 1.0);
  // Objects exist on the server afterwards.
  EXPECT_TRUE(bed.fs().ResolvePath("/obj/o0.o").has_value());
  EXPECT_TRUE(bed.fs().ResolvePath("/obj/tclsh").has_value());
  // WAN consistency traffic happened.
  EXPECT_GT(bed.StatsOf(mount).Calls("GETATTR"), 50u);
}

TEST(MakeBenchTest, GvfsFasterThanNfsInWan) {
  MakeConfig config = SmallMake();

  double nfs_seconds = 0;
  std::uint64_t nfs_rpcs = 0;
  {
    Testbed bed;
    bed.AddWanClient();
    PopulateMakeTree(bed.fs(), config);
    auto& mount = bed.NativeMount(0);
    auto report = RunTask(bed.sched(), RunMake(bed.sched(), mount, config));
    nfs_seconds = report.RuntimeSeconds();
    nfs_rpcs = bed.StatsOf(mount).TotalCalls();
  }

  double gvfs_seconds = 0;
  std::uint64_t gvfs_rpcs = 0;
  {
    Testbed bed;
    bed.AddWanClient();
    PopulateMakeTree(bed.fs(), config);
    SessionConfig session_config;
    session_config.model = ConsistencyModel::kInvalidationPolling;
    session_config.cache_mode = CacheMode::kWriteBack;
    auto& session = bed.CreateSession(session_config, {0});
    auto report =
        RunTask(bed.sched(), RunMake(bed.sched(), session.mount(0), config));
    gvfs_seconds = report.RuntimeSeconds();
    gvfs_rpcs = session.stats->TotalCalls();
  }

  EXPECT_LT(gvfs_seconds, nfs_seconds);
  EXPECT_LT(gvfs_rpcs, nfs_rpcs / 2);
}

TEST(PostmarkTest, TransactionMixMatchesBiases) {
  Testbed bed;
  bed.AddWanClient();
  PostmarkConfig config;
  config.files = 20;
  config.transactions = 60;
  config.min_size = 32 * 1024;
  config.max_size = 64 * 1024;
  config.subdirectories = 5;
  auto& mount = bed.NativeMount(0);
  auto report = RunTask(bed.sched(), RunPostmark(bed.sched(), mount, config));
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.reads + report.appends + report.creates + report.deletes,
            config.transactions);
  // read/append bias 9: reads dominate appends.
  EXPECT_GT(report.reads, report.appends);
  EXPECT_GT(report.RuntimeSeconds(), 1.0);
  // Pool cleaned up afterwards.
  auto listing = bed.fs().ReadDir(*bed.fs().ResolvePath("/p0"), 0, 100);
  ASSERT_TRUE(listing.has_value());
  EXPECT_TRUE(listing->empty());
}

TEST(LockBenchTest, StrongConsistencyIsFair) {
  Testbed bed;
  for (int i = 0; i < 3; ++i) bed.AddWanClient();

  SessionConfig config;
  config.model = ConsistencyModel::kDelegationCallback;
  config.cache_mode = CacheMode::kWriteBack;
  kclient::MountOptions noac;
  noac.noac = true;
  auto& session = bed.CreateSession(config, {0, 1, 2}, noac);

  LockBenchConfig lock_config;
  lock_config.acquisitions_per_client = 3;
  lock_config.hold_time = Seconds(2);
  auto report = RunTask(
      bed.sched(),
      RunLockBench(bed.sched(),
                   {&session.mount(0), &session.mount(1), &session.mount(2)},
                   lock_config));
  EXPECT_EQ(report.acquisition_order.size(), 9u);
  // Strong consistency: releases visible promptly, so the lock circulates.
  EXPECT_LE(report.MaxConsecutiveByOneClient(), 2);
}

TEST(LockBenchTest, WeakConsistencyFavorsPreviousOwner) {
  Testbed bed;
  for (int i = 0; i < 3; ++i) bed.AddWanClient();

  kclient::MountOptions options;  // default: 30 s attribute cache
  std::vector<kclient::Vfs*> mounts;
  for (int i = 0; i < 3; ++i) mounts.push_back(&bed.NativeMount(i, options));

  LockBenchConfig lock_config;
  lock_config.acquisitions_per_client = 3;
  lock_config.hold_time = Seconds(2);
  auto report = RunTask(bed.sched(), RunLockBench(bed.sched(), mounts, lock_config));
  EXPECT_EQ(report.acquisition_order.size(), 9u);
  // Stale caches: the previous owner reacquires back-to-back.
  EXPECT_GT(report.self_handoffs, 0);
}

TEST(NanomosTest, UpdateCostVisibleInIterationTimes) {
  Testbed bed;
  bed.AddWanClient();
  bed.AddWanClient();
  const int admin = bed.AddLanClient();

  NanomosConfig config;
  config.matlab_dirs = 6;
  config.matlab_files_per_dir = 20;
  config.mpitb_files = 30;
  config.matlab_working_dirs = 4;
  config.iterations = 6;
  config.update_after_iteration = 3;
  config.compute_per_iteration = Seconds(5);
  config.inter_iteration_gap = Seconds(15);  // > poll period below
  PopulateRepository(bed.fs(), config);

  SessionConfig session_config;
  session_config.model = ConsistencyModel::kInvalidationPolling;
  session_config.poll_period = Seconds(10);
  session_config.poll_max_period = Seconds(10);
  auto& session = bed.CreateSession(session_config, {0, 1, admin});

  auto report = RunTask(
      bed.sched(),
      RunNanomos(bed.sched(), {&session.mount(0), &session.mount(1)},
                 &session.mount(2), UpdateKind::kMpitb, config));
  EXPECT_TRUE(report.ok);
  ASSERT_EQ(report.iteration_seconds.size(), 6u);
  // Cold first run is the slowest; warm runs settle near compute time;
  // the post-update run (index 3) costs more than the warm runs around it.
  EXPECT_GT(report.iteration_seconds[0], report.iteration_seconds[2]);
  EXPECT_GT(report.iteration_seconds[3], report.iteration_seconds[2]);
  EXPECT_LE(report.iteration_seconds[5], report.iteration_seconds[3]);
}

TEST(Ch1dTest, NfsConsistencyOverheadGrowsGvfsStaysFlat) {
  Ch1dConfig config;
  config.runs = 6;
  config.files_per_run = 10;
  config.file_bytes = 32 * 1024;
  config.compute_base = Seconds(2);

  std::vector<double> nfs_runs;
  {
    Testbed bed;
    bed.AddWanClient();
    bed.AddWanClient();
    auto& producer = bed.NativeMount(0);
    auto& consumer = bed.NativeMount(1);
    auto report =
        RunTask(bed.sched(), RunCh1d(bed.sched(), producer, consumer, config));
    EXPECT_TRUE(report.ok);
    nfs_runs = report.run_seconds;
  }

  std::vector<double> gvfs_runs;
  {
    Testbed bed;
    bed.AddWanClient();
    bed.AddWanClient();
    SessionConfig session_config;
    session_config.model = ConsistencyModel::kDelegationCallback;
    session_config.cache_mode = CacheMode::kWriteBack;
    kclient::MountOptions noac;
    noac.noac = true;
    auto& session = bed.CreateSession(session_config, {0, 1}, noac);
    auto report = RunTask(
        bed.sched(),
        RunCh1d(bed.sched(), session.mount(0), session.mount(1), config));
    EXPECT_TRUE(report.ok);
    gvfs_runs = report.run_seconds;
  }

  ASSERT_EQ(nfs_runs.size(), 6u);
  ASSERT_EQ(gvfs_runs.size(), 6u);
  // NFS cost grows with the dataset; GVFS's last run beats NFS's last run.
  EXPECT_GT(nfs_runs.back(), nfs_runs.front());
  EXPECT_LT(gvfs_runs.back(), nfs_runs.back());
}

}  // namespace
}  // namespace gvfs::workloads
