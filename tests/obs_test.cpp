// Unit tests for the diagnosis layer (src/obs): watchdog detectors driven
// deterministically through ScanNow(), the detector table's internal
// consistency, the dump format's event round-trip, and the JSON reader the
// doctor is built on. End-to-end dump/doctor coverage lives in the doctor
// ctest tier (tools/doctor/doctor_check.py); these tests pin the pieces.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/json_value.h"
#include "metrics/registry.h"
#include "obs/anomaly.h"
#include "obs/dump.h"
#include "sim/scheduler.h"
#include "trace/trace.h"

namespace gvfs {
namespace {

using obs::Anomaly;
using obs::AnomalyKind;
using obs::ObsConfig;
using obs::Watchdog;

// ---------------------------------------------------------------------------
// Detector table consistency
// ---------------------------------------------------------------------------

TEST(DetectorTable, EnumeratorsNamesAndRegistryAgree) {
  // Raise() indexes the per-kind counters by static_cast<size_t>(kind) while
  // AttachMetrics() fills them in kDetectors order, so the registry must be
  // in enum order with every name round-tripping.
  for (std::size_t i = 0; i < obs::kDetectorCount; ++i) {
    const obs::DetectorInfo& d = obs::kDetectors[i];
    EXPECT_EQ(static_cast<std::size_t>(d.kind), i);
    EXPECT_STREQ(obs::AnomalyKindName(d.kind), d.name);
    AnomalyKind parsed = AnomalyKind::kRecallStorm;
    EXPECT_TRUE(obs::AnomalyKindFromName(d.name, &parsed));
    EXPECT_EQ(parsed, d.kind);
  }
  AnomalyKind parsed = AnomalyKind::kRecallStorm;
  EXPECT_FALSE(obs::AnomalyKindFromName("no-such-detector", &parsed));
}

// ---------------------------------------------------------------------------
// Watchdog detectors (synchronous ScanNow passes; no scheduler run needed)
// ---------------------------------------------------------------------------

std::vector<AnomalyKind> Kinds(const Watchdog& dog) {
  std::vector<AnomalyKind> kinds;
  for (const Anomaly& a : dog.anomalies()) kinds.push_back(a.kind);
  return kinds;
}

TEST(Watchdog, RecallStormFiresPerWindowDelta) {
  sim::Scheduler sched;
  metrics::Registry registry;
  double reads = 0, writes = 0;
  registry.AddProbe("s0.recalls_read", [&] { return reads; });
  registry.AddProbe("s0.recalls_write", [&] { return writes; });

  ObsConfig config;
  config.recall_storm_threshold = 64;
  Watchdog dog(sched, config);
  dog.WatchRegistry(&registry);
  dog.AttachMetrics(registry);

  // First window: 40 + 23 = 63 recalls, under the threshold.
  reads = 40;
  writes = 23;
  dog.ScanNow();
  EXPECT_TRUE(dog.anomalies().empty());

  // Second window: +64 recalls. The detector gates on the per-window delta,
  // not the absolute total.
  reads += 30;
  writes += 34;
  dog.ScanNow();
  ASSERT_EQ(dog.anomalies().size(), 1u);
  EXPECT_EQ(dog.anomalies()[0].kind, AnomalyKind::kRecallStorm);
  EXPECT_EQ(dog.anomalies()[0].value, 64.0);
  EXPECT_EQ(dog.anomalies()[0].threshold, 64.0);

  // Quiet window: no new firing, and the counters reflect exactly one.
  dog.ScanNow();
  EXPECT_EQ(dog.anomalies().size(), 1u);
  EXPECT_EQ(registry.GetCounter("obs.anomalies").value(), 1u);
  EXPECT_EQ(registry.GetCounter("obs.anomaly.recall-storm").value(), 1u);
}

TEST(Watchdog, StalenessSloLatchesUntilRecovery) {
  sim::Scheduler sched;
  metrics::Registry registry;
  registry.GetHistogram("s0.staleness_us").Record(50'000'000);  // 50 s

  Watchdog dog(sched);
  dog.WatchRegistry(&registry);
  dog.AddStalenessSlo("s0.staleness_us", Seconds(10));

  dog.ScanNow();
  ASSERT_EQ(dog.anomalies().size(), 1u);
  EXPECT_EQ(dog.anomalies()[0].kind, AnomalyKind::kStalenessSlo);
  EXPECT_NE(dog.anomalies()[0].detail.find("s0.staleness_us"),
            std::string::npos);

  // A p99 still over budget must not re-fire every window: the SLO latches
  // until the histogram recovers.
  dog.ScanNow();
  EXPECT_EQ(dog.anomalies().size(), 1u);
}

TEST(Watchdog, InvOverflowFiresOnWrapAndOnRisingOccupancy) {
  sim::Scheduler sched;
  metrics::Registry registry;
  double wraps = 0, entries = 0;
  registry.AddProbe("s0.inv_wraps", [&] { return wraps; });
  registry.AddProbe("s0.inv_buffer_entries", [&] { return entries; });

  ObsConfig config;
  config.occupancy_trend_windows = 3;
  config.occupancy_floor = 1024.0;
  Watchdog dog(sched, config);
  dog.WatchRegistry(&registry);

  // Steady state below the floor: nothing fires.
  entries = 500;
  dog.ScanNow();
  dog.ScanNow();
  EXPECT_TRUE(dog.anomalies().empty());

  // One buffer wrap in a window fires immediately.
  wraps = 1;
  dog.ScanNow();
  ASSERT_EQ(dog.anomalies().size(), 1u);
  EXPECT_EQ(dog.anomalies()[0].kind, AnomalyKind::kInvOverflow);

  // Occupancy rising above the floor for three consecutive windows fires
  // the trend arm (the wrap counter stays flat from here on).
  entries = 2000;
  dog.ScanNow();
  entries = 3000;
  dog.ScanNow();
  EXPECT_EQ(dog.anomalies().size(), 1u);  // two rising windows: not yet
  entries = 4000;
  dog.ScanNow();
  ASSERT_EQ(dog.anomalies().size(), 2u);
  EXPECT_EQ(dog.anomalies()[1].kind, AnomalyKind::kInvOverflow);
  EXPECT_EQ(dog.anomalies()[1].value, 4000.0);
}

TEST(Watchdog, ShardImbalanceNeedsRatioAndAbsoluteLoad) {
  sim::Scheduler sched;
  metrics::Registry registry;
  std::vector<double> load = {100, 0, 0, 0, 0};
  for (std::size_t i = 0; i < load.size(); ++i) {
    registry.AddProbe("shard" + std::to_string(i) + ".inv_buffer_entries",
                      [&load, i] { return load[i]; });
  }
  Watchdog dog(sched);  // defaults: ratio 4.0, min 256 entries
  dog.WatchRegistry(&registry);
  dog.WatchShardGroup("servers",
                      {"shard0.inv_buffer_entries", "shard1.inv_buffer_entries",
                       "shard2.inv_buffer_entries", "shard3.inv_buffer_entries",
                       "shard4.inv_buffer_entries"});

  // Ratio 5x but only 100 entries: below imbalance_min, stays quiet.
  dog.ScanNow();
  EXPECT_TRUE(dog.anomalies().empty());

  // 10000 vs mean 2000: fires once, then latches while it persists.
  load[0] = 10000;
  dog.ScanNow();
  dog.ScanNow();
  ASSERT_EQ(dog.anomalies().size(), 1u);
  EXPECT_EQ(dog.anomalies()[0].kind, AnomalyKind::kShardImbalance);
  EXPECT_EQ(dog.anomalies()[0].value, 5.0);

  // Rebalanced, then skewed again: the latch re-arms.
  load = {2000, 2000, 2000, 2000, 2000};
  dog.ScanNow();
  load = {10000, 100, 100, 100, 100};
  dog.ScanNow();
  EXPECT_EQ(dog.anomalies().size(), 2u);
}

TEST(Watchdog, MigrationFlapCountsClientSideCompletions) {
  sim::Scheduler sched;
  SimTime clock = 0;
  trace::TraceBuffer buffer(256);
  trace::Tracer tracer(&buffer, &clock);

  ObsConfig config;
  config.flap_threshold = 3;
  config.flap_window = Seconds(30);
  Watchdog dog(sched, config);
  dog.WatchTrace(&buffer);

  // Two client-side migrations of file 5:77 plus a server-side record (which
  // must not double-count) stay under the threshold...
  clock = Seconds(1);
  tracer.Policy(trace::EventType::kPolicyMigrate, 4, 5, 77, 0, 1, 0);
  clock = Seconds(2);
  tracer.Policy(trace::EventType::kPolicyMigrate, 4, 5, 77, 1, 0,
                trace::kPolicyFlagServerSide);
  tracer.Policy(trace::EventType::kPolicyMigrate, 4, 5, 77, 1, 0, 0);
  // ...and a third migration of a different file does not conflate.
  clock = Seconds(3);
  tracer.Policy(trace::EventType::kPolicyMigrate, 4, 5, 99, 0, 1, 0);
  dog.ScanNow();
  EXPECT_TRUE(dog.anomalies().empty());

  // The third flip of 5:77 inside the window crosses the threshold.
  clock = Seconds(4);
  tracer.Policy(trace::EventType::kPolicyMigrate, 4, 5, 77, 0, 1, 0);
  dog.ScanNow();
  ASSERT_EQ(Kinds(dog), std::vector{AnomalyKind::kMigrationFlap});
  EXPECT_EQ(dog.anomalies()[0].fsid, 5u);
  EXPECT_EQ(dog.anomalies()[0].ino, 77u);
  EXPECT_EQ(dog.anomalies()[0].host, 4u);
}

TEST(Watchdog, FiringEmitsTraceEventAndInvokesHook) {
  sim::Scheduler sched;
  metrics::Registry registry;
  double reads = 100;
  registry.AddProbe("s0.recalls_read", [&] { return reads; });

  SimTime clock = 0;
  trace::TraceBuffer buffer(64);

  ObsConfig config;
  config.recall_storm_threshold = 64;
  Watchdog dog(sched, config);
  dog.WatchRegistry(&registry);
  dog.SetTracer(trace::Tracer(&buffer, &clock), /*host=*/7);
  std::vector<Anomaly> hooked;
  dog.SetOnAnomaly([&](const Anomaly& a) { hooked.push_back(a); });

  dog.ScanNow();  // first window total 100 >= 64
  ASSERT_EQ(dog.anomalies().size(), 1u);
  ASSERT_EQ(hooked.size(), 1u);
  EXPECT_EQ(hooked[0].kind, AnomalyKind::kRecallStorm);

  ASSERT_EQ(buffer.size(), 1u);
  const trace::Event& ev = buffer.at(0);
  EXPECT_EQ(ev.type, trace::EventType::kAnomaly);
  EXPECT_EQ(ev.host, 7u);  // fleet-scoped firing attributed to the server
  EXPECT_EQ(ev.u.anomaly.kind,
            static_cast<std::uint32_t>(AnomalyKind::kRecallStorm));
  EXPECT_EQ(ev.u.anomaly.value, 100.0);
  EXPECT_EQ(ev.u.anomaly.threshold, 64.0);
}

// ---------------------------------------------------------------------------
// Dump format: EventToJson / EventFromJson round-trip
// ---------------------------------------------------------------------------

/// Serializes `ev` out of `src` and parses it back into `dst`.
trace::Event RoundTrip(const trace::TraceBuffer& src, const trace::Event& ev,
                       trace::TraceBuffer& dst) {
  const std::string json = obs::EventToJson(src, ev);
  JsonParser parser;
  const JsonValue doc = parser.Parse(json);
  EXPECT_TRUE(parser.ok()) << parser.error() << " in " << json;
  trace::Event out;
  EXPECT_TRUE(obs::EventFromJson(doc, dst, &out)) << json;
  EXPECT_EQ(out.time, ev.time);
  EXPECT_EQ(out.type, ev.type);
  EXPECT_EQ(out.host, ev.host);
  EXPECT_EQ(out.port, ev.port);
  return out;
}

TEST(DumpFormat, EveryPayloadFamilyRoundTrips) {
  SimTime clock = Seconds(12);
  trace::TraceBuffer src(64);
  trace::Tracer tracer(&src, &clock);
  tracer.Rpc(trace::EventType::kRpcSend, 1, 2049, 2, 800, 42, 100003, 6,
             "READ", 7, 8, 9);
  tracer.Cache(trace::EventType::kCacheHit, 1, 5, 10, 32768, "read");
  tracer.Deleg(trace::EventType::kDelegGrant, 2, 5, 88, 1, 7, 0, 4096);
  tracer.Inv(trace::EventType::kInvAppend, 3, 5, 77, 123456789, 4, 9);
  tracer.Policy(trace::EventType::kPolicyMigrate, 4, 5, 99, 0, 1,
                trace::kPolicyFlagServerSide);
  tracer.Anomaly(1, 5, 100, 0, 65.0, 64.0);
  tracer.Node(trace::EventType::kNodeCrash, 6);
  ASSERT_EQ(src.size(), 7u);

  trace::TraceBuffer dst(64);

  const trace::Event rpc = RoundTrip(src, src.at(0), dst);
  EXPECT_EQ(rpc.u.rpc.peer_host, 2u);
  EXPECT_EQ(rpc.u.rpc.peer_port, 800u);
  EXPECT_EQ(rpc.u.rpc.xid, 42u);
  EXPECT_EQ(rpc.u.rpc.proc, 6u);
  EXPECT_EQ(rpc.u.rpc.trace_id, 7u);
  EXPECT_EQ(rpc.u.rpc.span_id, 8u);
  EXPECT_EQ(rpc.u.rpc.parent_span_id, 9u);
  // Labels are re-interned into the destination buffer, so ids may differ
  // while the text must survive.
  EXPECT_EQ(dst.LabelName(rpc.u.rpc.label), "READ");

  const trace::Event cache = RoundTrip(src, src.at(1), dst);
  EXPECT_EQ(cache.u.cache.offset, 32768u);
  EXPECT_EQ(dst.LabelName(cache.u.cache.label), "read");

  const trace::Event deleg = RoundTrip(src, src.at(2), dst);
  EXPECT_EQ(deleg.u.deleg.ino, 88u);
  EXPECT_EQ(deleg.u.deleg.deleg_type, 1u);
  EXPECT_EQ(deleg.u.deleg.peer_host, 7u);
  EXPECT_EQ(deleg.u.deleg.wanted_offset, 4096u);

  const trace::Event inv = RoundTrip(src, src.at(3), dst);
  EXPECT_EQ(inv.u.inv.fsid, 5u);
  EXPECT_EQ(inv.u.inv.ino, 77u);
  EXPECT_EQ(inv.u.inv.timestamp, 123456789u);
  EXPECT_EQ(inv.u.inv.count, 4u);
  EXPECT_EQ(inv.u.inv.peer_host, 9u);

  const trace::Event policy = RoundTrip(src, src.at(4), dst);
  EXPECT_EQ(policy.u.policy.ino, 99u);
  EXPECT_EQ(policy.u.policy.from, 0u);
  EXPECT_EQ(policy.u.policy.to, 1u);
  EXPECT_EQ(policy.u.policy.flags, trace::kPolicyFlagServerSide);

  const trace::Event anomaly = RoundTrip(src, src.at(5), dst);
  EXPECT_EQ(anomaly.u.anomaly.ino, 100u);
  EXPECT_EQ(anomaly.u.anomaly.value, 65.0);
  EXPECT_EQ(anomaly.u.anomaly.threshold, 64.0);

  RoundTrip(src, src.at(6), dst);  // kNodeCrash: header fields only
}

TEST(DumpFormat, RejectsUnknownEventType) {
  JsonParser parser;
  const JsonValue doc =
      parser.Parse(R"({"t":0,"type":"NOT_A_REAL_EVENT","host":1})");
  ASSERT_TRUE(parser.ok());
  trace::TraceBuffer buffer(8);
  trace::Event out;
  EXPECT_FALSE(obs::EventFromJson(doc, buffer, &out));
  EXPECT_EQ(buffer.size(), 0u);
}

TEST(DumpFormat, EventTypeNamesRoundTripThroughTheInverse) {
  // EventTypeFromName is the dump reader's inverse of EventTypeName; it must
  // cover every enumerator or ReadDump silently drops that event family.
  for (int i = 0; i <= static_cast<int>(trace::EventType::kAnomaly); ++i) {
    const auto type = static_cast<trace::EventType>(i);
    trace::EventType parsed = trace::EventType::kRpcSend;
    ASSERT_TRUE(obs::EventTypeFromName(trace::EventTypeName(type), &parsed))
        << trace::EventTypeName(type);
    EXPECT_EQ(parsed, type);
  }
}

// ---------------------------------------------------------------------------
// JSON reader
// ---------------------------------------------------------------------------

TEST(JsonReader, ParsesNestedDocumentsWithChainedLookups) {
  JsonParser parser;
  const JsonValue doc = parser.Parse(
      R"({"trace":{"events":[{"type":"INV_APPEND","t":5},)"
      R"({"type":"RPC_SEND","t":6}]},"healthy":false,"pi":3.5})");
  ASSERT_TRUE(parser.ok()) << parser.error();
  EXPECT_EQ(doc["trace"]["events"].size(), 2u);
  EXPECT_EQ(doc["trace"]["events"][1]["type"].AsString(), "RPC_SEND");
  EXPECT_EQ(doc["healthy"].AsBool(true), false);
  EXPECT_EQ(doc["pi"].AsDouble(), 3.5);
  // Missing keys chain to the null sentinel instead of crashing.
  EXPECT_TRUE(doc["trace"]["missing"][3]["nope"].is_null());
  EXPECT_EQ(doc["trace"]["missing"].AsU64(17), 17u);
}

TEST(JsonReader, PreservesSixtyFourBitIntegersExactly) {
  // 2^63 + 1 is not representable as a double; the raw token must carry it.
  JsonParser parser;
  const JsonValue doc = parser.Parse(R"({"t":9223372036854775809})");
  ASSERT_TRUE(parser.ok());
  EXPECT_EQ(doc["t"].AsU64(), 9223372036854775809ull);
  EXPECT_EQ(doc["t"].raw_number(), "9223372036854775809");
}

TEST(JsonReader, RejectsMalformedInput) {
  const char* bad[] = {
      "",  "{",  "[1,]", "{\"a\":}", "{\"a\" 1}", "tru", "\"unterminated",
      "1 2",  // trailing garbage after the root value
  };
  for (const char* text : bad) {
    JsonParser parser;
    const JsonValue doc = parser.Parse(text);
    EXPECT_FALSE(parser.ok()) << "accepted: " << text;
    EXPECT_TRUE(doc.is_null());
  }
}

}  // namespace
}  // namespace gvfs
