// Unit tests for the proxy disk cache and GVFS protocol codecs.
#include <gtest/gtest.h>

#include "gvfs/disk_cache.h"
#include "gvfs/proto.h"

namespace gvfs::proxy {
namespace {

using nfs3::Fh;

constexpr std::uint32_t kBs = 32 * 1024;

nfs3::Fattr MakeAttr(std::uint64_t ino, std::uint64_t size, SimTime mtime) {
  nfs3::Fattr attr;
  attr.fileid = ino;
  attr.size = size;
  attr.mtime = mtime;
  return attr;
}

TEST(DiskCacheTest, AttrStoreAndInvalidate) {
  DiskCache cache(kBs);
  Fh fh{1, 5};
  EXPECT_EQ(cache.ValidAttr(fh), nullptr);
  cache.StoreAttr(fh, MakeAttr(5, 10, Seconds(1)), Seconds(1));
  ASSERT_NE(cache.ValidAttr(fh), nullptr);
  EXPECT_EQ(cache.ValidAttr(fh)->attr.size, 10u);

  cache.InvalidateAttr(fh);
  EXPECT_EQ(cache.ValidAttr(fh), nullptr);
  // The entry survives invalidation (disk contents persist).
  EXPECT_NE(cache.AnyAttr(fh), nullptr);
}

TEST(DiskCacheTest, InvalidateAllAttrs) {
  DiskCache cache(kBs);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    cache.StoreAttr(Fh{1, i}, MakeAttr(i, 0, 0), 0);
  }
  cache.InvalidateAllAttrs();
  for (std::uint64_t i = 1; i <= 5; ++i) {
    EXPECT_EQ(cache.ValidAttr(Fh{1, i}), nullptr);
  }
  EXPECT_EQ(cache.AttrCount(), 5u);
}

TEST(DiskCacheTest, LookupValidityTiedToDirAttrs) {
  DiskCache cache(kBs);
  Fh dir{1, 1}, child{1, 2};
  // Without valid dir attrs the entry cannot be stored (unvalidatable).
  cache.StoreLookup(dir, "f", child);
  cache.StoreAttr(dir, MakeAttr(1, 0, Seconds(1)), 0);
  EXPECT_EQ(cache.ValidLookup(dir, "f"), nullptr);

  cache.StoreLookup(dir, "f", child);
  ASSERT_NE(cache.ValidLookup(dir, "f"), nullptr);
  EXPECT_EQ(*cache.ValidLookup(dir, "f"), child);

  // Invalidated dir attrs hide the entry; a refreshed dir with a *changed*
  // mtime keeps it hidden (stale), matching kernel dnlc semantics.
  cache.InvalidateAttr(dir);
  EXPECT_EQ(cache.ValidLookup(dir, "f"), nullptr);
  cache.StoreAttr(dir, MakeAttr(1, 0, Seconds(2)), 0);
  EXPECT_EQ(cache.ValidLookup(dir, "f"), nullptr);
  // Same mtime as recorded -> trusted again.
  cache.StoreAttr(dir, MakeAttr(1, 0, Seconds(1)), 0);
  cache.StoreLookup(dir, "f", child);
  cache.StoreAttr(dir, MakeAttr(1, 0, Seconds(1)), 0);
  EXPECT_NE(cache.ValidLookup(dir, "f"), nullptr);
}

TEST(DiskCacheTest, NegativeLookupEntries) {
  DiskCache cache(kBs);
  Fh dir{1, 1};
  cache.StoreAttr(dir, MakeAttr(1, 0, 0), 0);
  cache.StoreLookup(dir, "ghost", Fh{});
  const Fh* entry = cache.ValidLookup(dir, "ghost");
  ASSERT_NE(entry, nullptr);
  EXPECT_FALSE(entry->valid());
}

TEST(DiskCacheTest, BlockStoreAndDirtyTracking) {
  DiskCache cache(kBs);
  Fh fh{1, 3};
  cache.StoreBlock(fh, 0, Bytes(100, 1), /*dirty=*/false);
  cache.WriteIntoBlock(fh, 1, 0, Bytes(50, 2));
  EXPECT_EQ(cache.DirtyBlockCount(fh), 1u);
  auto offsets = cache.DirtyOffsets(fh);
  ASSERT_EQ(offsets.size(), 1u);
  EXPECT_EQ(offsets[0], kBs);

  cache.MarkClean(fh, 1);
  EXPECT_EQ(cache.DirtyBlockCount(fh), 0u);
}

TEST(DiskCacheTest, WriteIntoBlockMergesData) {
  DiskCache cache(kBs);
  Fh fh{1, 3};
  cache.StoreBlock(fh, 0, Bytes(100, 1), false);
  cache.WriteIntoBlock(fh, 0, 10, Bytes(5, 9));
  const DiskCache::Block* block = cache.FindBlock(fh, 0);
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(block->data[9], 1);
  EXPECT_EQ(block->data[10], 9);
  EXPECT_EQ(block->data[14], 9);
  EXPECT_EQ(block->data[15], 1);
  EXPECT_TRUE(block->dirty);
}

TEST(DiskCacheTest, ObserveMtimeDropsCleanKeepsDirty) {
  DiskCache cache(kBs);
  Fh fh{1, 3};
  auto& fe = cache.FileFor(fh);
  fe.mtime_seen = Seconds(1);
  cache.StoreBlock(fh, 0, Bytes(10, 1), /*dirty=*/false);
  cache.WriteIntoBlock(fh, 1, 0, Bytes(10, 2));  // dirty

  cache.ObserveMtime(fh, Seconds(2), 100, /*own_write=*/false);
  EXPECT_EQ(cache.FindBlock(fh, 0), nullptr);  // clean dropped
  ASSERT_NE(cache.FindBlock(fh, 1), nullptr);  // dirty kept
  EXPECT_EQ(cache.FileFor(fh).mtime_seen, Seconds(2));
}

TEST(DiskCacheTest, ObserveOwnWriteKeepsData) {
  DiskCache cache(kBs);
  Fh fh{1, 3};
  auto& fe = cache.FileFor(fh);
  fe.mtime_seen = Seconds(1);
  cache.StoreBlock(fh, 0, Bytes(10, 1), false);
  cache.ObserveMtime(fh, Seconds(2), 100, /*own_write=*/true);
  EXPECT_NE(cache.FindBlock(fh, 0), nullptr);
}

TEST(DiskCacheTest, FilesWithDirtyData) {
  DiskCache cache(kBs);
  cache.StoreBlock(Fh{1, 1}, 0, Bytes(10, 1), false);
  cache.WriteIntoBlock(Fh{1, 2}, 0, 0, Bytes(10, 2));
  cache.WriteIntoBlock(Fh{1, 3}, 0, 0, Bytes(10, 3));
  auto dirty = cache.FilesWithDirtyData();
  EXPECT_EQ(dirty.size(), 2u);
}

TEST(DiskCacheTest, CrashPreservesDataInvalidatesMetadata) {
  DiskCache cache(kBs);
  Fh fh{1, 4};
  cache.StoreAttr(fh, MakeAttr(4, 10, 0), 0);
  cache.WriteIntoBlock(fh, 0, 0, Bytes(10, 7));
  cache.Crash();
  EXPECT_EQ(cache.ValidAttr(fh), nullptr);
  ASSERT_NE(cache.FindBlock(fh, 0), nullptr);
  EXPECT_TRUE(cache.FindBlock(fh, 0)->dirty);  // dirty flags reconstructed
}

TEST(DiskCacheTest, CachedBytesAccounting) {
  DiskCache cache(kBs);
  Fh fh{1, 4};
  cache.StoreBlock(fh, 0, Bytes(100, 1), false);
  EXPECT_EQ(cache.CachedBytes(), 100u);
  cache.StoreBlock(fh, 0, Bytes(200, 1), false);  // replace
  EXPECT_EQ(cache.CachedBytes(), 200u);
  cache.DropFileData(fh);
  EXPECT_EQ(cache.CachedBytes(), 0u);
}

// --- protocol codecs ---

TEST(GvfsProtoTest, GetInvRoundTrip) {
  GetInvRes res;
  res.new_timestamp = 42;
  res.force_invalidate = false;
  res.poll_again = true;
  res.handles = {Fh{1, 2}, Fh{1, 3}};
  auto parsed = nfs3::Parse<GetInvRes>(nfs3::Serialize(res));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->new_timestamp, 42u);
  EXPECT_TRUE(parsed->poll_again);
  ASSERT_EQ(parsed->handles.size(), 2u);
  EXPECT_EQ(parsed->handles[1], (Fh{1, 3}));
}

TEST(GvfsProtoTest, CallbackRoundTrip) {
  CallbackArgs args;
  args.file = Fh{1, 9};
  args.type = CallbackType::kRecallWrite;
  args.has_wanted_offset = true;
  args.wanted_offset = 65536;
  auto parsed = nfs3::Parse<CallbackArgs>(nfs3::Serialize(args));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, CallbackType::kRecallWrite);
  EXPECT_EQ(parsed->wanted_offset, 65536u);

  CallbackRes res;
  res.pending_offsets = {0, 32768, 65536};
  auto parsed_res = nfs3::Parse<CallbackRes>(nfs3::Serialize(res));
  ASSERT_TRUE(parsed_res.has_value());
  EXPECT_EQ(parsed_res->pending_offsets.size(), 3u);
}

TEST(GvfsProtoTest, RecoveryRoundTrip) {
  RecoveryRes res;
  res.dirty_files = {Fh{1, 7}};
  auto parsed = nfs3::Parse<RecoveryRes>(nfs3::Serialize(res));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->dirty_files.size(), 1u);
  EXPECT_EQ(parsed->dirty_files[0], (Fh{1, 7}));
}

TEST(GvfsProtoTest, GrantSuffixAppendExtract) {
  Bytes body = {1, 2, 3, 4};
  GrantSuffix suffix;
  suffix.delegation = DelegationType::kWrite;
  suffix.AppendTo(body);
  EXPECT_EQ(body.size(), 4u + GrantSuffix::kWireBytes);

  GrantSuffix extracted = GrantSuffix::ExtractFrom(body);
  EXPECT_EQ(extracted.delegation, DelegationType::kWrite);
  EXPECT_EQ(body, (Bytes{1, 2, 3, 4}));  // suffix stripped
}

TEST(GvfsProtoTest, GrantSuffixAbsent) {
  Bytes body = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  GrantSuffix extracted = GrantSuffix::ExtractFrom(body);
  EXPECT_EQ(extracted.delegation, DelegationType::kNone);
  EXPECT_EQ(body.size(), 9u);  // untouched
}

TEST(GvfsProtoTest, GrantSuffixShortBody) {
  Bytes body = {1};
  GrantSuffix extracted = GrantSuffix::ExtractFrom(body);
  EXPECT_EQ(extracted.delegation, DelegationType::kNone);
  EXPECT_EQ(body.size(), 1u);
}

}  // namespace
}  // namespace gvfs::proxy
