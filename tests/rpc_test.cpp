#include <gtest/gtest.h>

#include <string>

#include "net/network.h"
#include "rpc/rpc.h"
#include "sim/scheduler.h"
#include "sim/sync.h"
#include "trace/trace.h"
#include "xdr/xdr.h"

namespace gvfs::rpc {
namespace {

constexpr std::uint32_t kProg = 100003;
constexpr std::uint32_t kProcEcho = 1;
constexpr std::uint32_t kProcSlow = 2;
constexpr std::uint32_t kProcCount = 3;

sim::Task<Bytes> EchoHandler(CallContext, Body args) { co_return args.ToBytes(); }

class RpcTest : public ::testing::Test {
 protected:
  RpcTest() : network_(sched_), domain_(sched_, network_) {
    client_host_ = network_.AddHost("client");
    server_host_ = network_.AddHost("server");
    network_.Connect(client_host_, server_host_,
                     net::LinkConfig{Milliseconds(20), 4'000'000});
    client_ = &domain_.CreateNode(client_host_, 1000, "client");
    server_ = &domain_.CreateNode(server_host_, 2049, "server");
    server_->RegisterHandler(kProg, kProcEcho, EchoHandler);
  }

  net::Address ServerAddr() const { return server_->address(); }

  static CallOptions Opts(std::string label) {
    CallOptions o;
    o.label = std::move(label);
    return o;
  }

  sim::Scheduler sched_;
  net::Network network_;
  Domain domain_;
  HostId client_host_ = 0, server_host_ = 0;
  RpcNode* client_ = nullptr;
  RpcNode* server_ = nullptr;
};

struct CallResult {
  bool done = false;
  bool ok = false;
  RpcError error = RpcError::kTimedOut;
  Bytes body;
  SimTime finished_at = -1;
};

sim::Task<void> DoCall(RpcNode* node, net::Address dst, std::uint32_t proc,
                       Bytes args, CallOptions opts, sim::Scheduler* sched,
                       CallResult* out) {
  auto r = co_await node->Call(dst, kProg, proc, std::move(args), std::move(opts));
  out->done = true;
  out->ok = r.has_value();
  if (r.has_value()) {
    out->body = r->ToBytes();
  } else {
    out->error = r.error();
  }
  out->finished_at = sched->Now();
}

TEST_F(RpcTest, EchoRoundTrip) {
  CallResult result;
  sim::Spawn(DoCall(client_, ServerAddr(), kProcEcho, Bytes{9, 8, 7}, Opts("ECHO"),
                    &sched_, &result));
  sched_.Run();
  ASSERT_TRUE(result.done);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.body, (Bytes{9, 8, 7}));
  // One RTT (40 ms) plus transmission time of the two small datagrams.
  EXPECT_GE(result.finished_at, Milliseconds(40));
  EXPECT_LE(result.finished_at, Milliseconds(42));
}

TEST_F(RpcTest, HandlerCanSleepInVirtualTime) {
  server_->RegisterHandler(kProg, kProcSlow,
                           [this](CallContext, Body) -> sim::Task<Bytes> {
                             co_await sim::Sleep(sched_, Seconds(3));
                             co_return Bytes{1};
                           });
  CallResult result;
  CallOptions opts = Opts("SLOW");
  opts.timeout = Seconds(10);
  sim::Spawn(
      DoCall(client_, ServerAddr(), kProcSlow, {}, std::move(opts), &sched_, &result));
  sched_.Run();
  ASSERT_TRUE(result.ok);
  EXPECT_GE(result.finished_at, Seconds(3) + Milliseconds(40));
}

TEST_F(RpcTest, UnknownProcedureReturnsProcUnavail) {
  CallResult result;
  sim::Spawn(DoCall(client_, ServerAddr(), 999, {}, Opts("BOGUS"), &sched_, &result));
  sched_.Run();
  ASSERT_TRUE(result.done);
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(result.error, RpcError::kProcUnavail);
}

TEST_F(RpcTest, TimesOutWhenLinkDown) {
  network_.SetLinkUp(client_host_, server_host_, false);
  CallResult result;
  CallOptions opts = Opts("ECHO");
  opts.timeout = Seconds(1);
  opts.max_retries = 2;
  sim::Spawn(
      DoCall(client_, ServerAddr(), kProcEcho, {}, std::move(opts), &sched_, &result));
  sched_.Run();
  ASSERT_TRUE(result.done);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error, RpcError::kTimedOut);
  // 3 attempts x 1 s timeout.
  EXPECT_EQ(result.finished_at, Seconds(3));
}

TEST_F(RpcTest, RetransmitSucceedsAfterPartitionHeals) {
  network_.SetLinkUp(client_host_, server_host_, false);
  sched_.At(Milliseconds(1500), [&] { network_.SetLinkUp(client_host_, server_host_, true); });

  CallResult result;
  CallOptions opts = Opts("ECHO");
  opts.timeout = Seconds(1);
  opts.max_retries = 5;
  sim::Spawn(DoCall(client_, ServerAddr(), kProcEcho, Bytes{5}, std::move(opts),
                    &sched_, &result));
  sched_.Run();
  ASSERT_TRUE(result.done);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.body, (Bytes{5}));
  // First attempt at t=0 dropped; second at t=1 s dropped; third at t=2 s
  // goes through.
  EXPECT_GE(result.finished_at, Seconds(2));
}

TEST_F(RpcTest, DuplicateRequestCachePreventsReExecution) {
  int executions = 0;
  server_->RegisterHandler(kProg, kProcCount,
                           [this, &executions](CallContext, Body) -> sim::Task<Bytes> {
                             ++executions;
                             // Slower than the client's retransmit timer, so a
                             // retransmission always arrives mid-execution.
                             co_await sim::Sleep(sched_, Milliseconds(500));
                             co_return Bytes{static_cast<std::uint8_t>(executions)};
                           });
  CallResult result;
  CallOptions opts = Opts("COUNT");
  opts.timeout = Milliseconds(200);
  opts.max_retries = 10;
  sim::Spawn(
      DoCall(client_, ServerAddr(), kProcCount, {}, std::move(opts), &sched_, &result));
  sched_.Run();
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(executions, 1);  // duplicates suppressed while in progress
  EXPECT_EQ(result.body, (Bytes{1}));
}

TEST_F(RpcTest, DuplicateAfterCompletionResendsCachedReply) {
  int executions = 0;
  server_->RegisterHandler(kProg, kProcCount,
                           [&executions](CallContext, Body) -> sim::Task<Bytes> {
                             ++executions;
                             co_return Bytes{static_cast<std::uint8_t>(executions)};
                           });
  // Simulate a lost reply: requests get through, the first reply is dropped.
  network_.SetOneWayUp(server_host_, client_host_, false);
  sched_.At(Milliseconds(100),
            [&] { network_.SetOneWayUp(server_host_, client_host_, true); });

  CallResult result;
  CallOptions opts = Opts("COUNT");
  opts.timeout = Milliseconds(300);
  opts.max_retries = 5;
  sim::Spawn(
      DoCall(client_, ServerAddr(), kProcCount, {}, std::move(opts), &sched_, &result));
  sched_.Run();
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(executions, 1);  // second request served from the DRC
  EXPECT_EQ(result.body, (Bytes{1}));
}

TEST_F(RpcTest, DownServerDropsRequests) {
  server_->SetDown(true);
  CallResult result;
  CallOptions opts = Opts("ECHO");
  opts.timeout = Milliseconds(500);
  opts.max_retries = 1;
  sim::Spawn(
      DoCall(client_, ServerAddr(), kProcEcho, {}, std::move(opts), &sched_, &result));
  sched_.Run();
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error, RpcError::kTimedOut);
}

TEST_F(RpcTest, ServerRecoversAfterRestart) {
  server_->SetDown(true);
  sched_.At(Milliseconds(700), [&] { server_->SetDown(false); });
  CallResult result;
  CallOptions opts = Opts("ECHO");
  opts.timeout = Milliseconds(500);
  opts.max_retries = 5;
  sim::Spawn(DoCall(client_, ServerAddr(), kProcEcho, Bytes{1}, std::move(opts),
                    &sched_, &result));
  sched_.Run();
  EXPECT_TRUE(result.ok);
}

TEST_F(RpcTest, DownClientCannotCall) {
  client_->SetDown(true);
  CallResult result;
  sim::Spawn(DoCall(client_, ServerAddr(), kProcEcho, {}, Opts("ECHO"), &sched_,
                    &result));
  sched_.Run();
  ASSERT_TRUE(result.done);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error, RpcError::kHostDown);
}

TEST_F(RpcTest, StatsCountOutgoingCallsByLabel) {
  StatsMap stats;
  client_->SetStatsSink(&stats);
  CallResult r1, r2, r3;
  sim::Spawn(DoCall(client_, ServerAddr(), kProcEcho, {}, Opts("GETATTR"), &sched_, &r1));
  sim::Spawn(DoCall(client_, ServerAddr(), kProcEcho, {}, Opts("GETATTR"), &sched_, &r2));
  sim::Spawn(DoCall(client_, ServerAddr(), kProcEcho, {}, Opts("LOOKUP"), &sched_, &r3));
  sched_.Run();
  EXPECT_EQ(stats.Calls("GETATTR"), 2u);
  EXPECT_EQ(stats.Calls("LOOKUP"), 1u);
  EXPECT_EQ(stats.TotalCalls(), 3u);
  EXPECT_GT(stats.TotalBytes(), 0u);
}

TEST_F(RpcTest, LoopbackCallsAreNotCounted) {
  StatsMap stats;
  RpcNode& proxy = domain_.CreateNode(client_host_, 3000, "proxy");
  proxy.RegisterHandler(kProg, kProcEcho, EchoHandler);
  client_->SetStatsSink(&stats);
  CallResult result;
  sim::Spawn(DoCall(client_, proxy.address(), kProcEcho, Bytes{1}, Opts("GETATTR"),
                    &sched_, &result));
  sched_.Run();
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(stats.TotalCalls(), 0u);  // same-host traffic excluded
}

TEST_F(RpcTest, ServerToClientCallbackWorks) {
  // The GVFS pattern: the "server" node calls back into the "client" node.
  client_->RegisterHandler(kProg, kProcEcho, EchoHandler);
  CallResult result;
  sim::Spawn(DoCall(server_, client_->address(), kProcEcho, Bytes{3}, Opts("CALLBACK"),
                    &sched_, &result));
  sched_.Run();
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.body, (Bytes{3}));
}

TEST_F(RpcTest, ConcurrentCallsMatchRepliesByXid) {
  server_->RegisterHandler(kProg, kProcSlow,
                           [this](CallContext, Body args) -> sim::Task<Bytes> {
                             // Delay inversely proportional to payload value so
                             // replies return out of order.
                             Bytes data = args.ToBytes();
                             co_await sim::Sleep(sched_, Seconds(10 - data.at(0)));
                             co_return data;
                           });
  CallResult r1, r2;
  CallOptions opts = Opts("SLOW");
  opts.timeout = Seconds(30);
  sim::Spawn(DoCall(client_, ServerAddr(), kProcSlow, Bytes{1}, opts, &sched_, &r1));
  sim::Spawn(DoCall(client_, ServerAddr(), kProcSlow, Bytes{9}, opts, &sched_, &r2));
  sched_.Run();
  ASSERT_TRUE(r1.ok);
  ASSERT_TRUE(r2.ok);
  EXPECT_EQ(r1.body, (Bytes{1}));
  EXPECT_EQ(r2.body, (Bytes{9}));
  EXPECT_LT(r2.finished_at, r1.finished_at);  // out-of-order completion
}

TEST_F(RpcTest, RetransmitsMatchTraceAndLinkDropAccounting) {
  trace::TraceBuffer buffer(1 << 10);
  domain_.SetTracer(trace::Tracer(&buffer, sched_.NowPtr()));

  // Requests dropped until t=1.5 s: the attempt at t=0 and the retransmit at
  // t=1 s are lost; the retransmit at t=2 s gets through.
  network_.SetLinkUp(client_host_, server_host_, false);
  sched_.At(Milliseconds(1500),
            [&] { network_.SetLinkUp(client_host_, server_host_, true); });

  CallResult result;
  CallOptions opts = Opts("ECHO");
  opts.timeout = Seconds(1);
  opts.max_retries = 5;
  sim::Spawn(DoCall(client_, ServerAddr(), kProcEcho, Bytes{5}, std::move(opts),
                    &sched_, &result));
  sched_.Run();
  ASSERT_TRUE(result.ok);

  std::uint64_t sends = 0, retransmits = 0, replies = 0, timeouts = 0;
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    switch (buffer.at(i).type) {
      case trace::EventType::kRpcSend: ++sends; break;
      case trace::EventType::kRpcRetransmit: ++retransmits; break;
      case trace::EventType::kRpcReply: ++replies; break;
      case trace::EventType::kRpcTimeout: ++timeouts; break;
      default: break;
    }
  }
  EXPECT_EQ(sends, 1u);
  EXPECT_EQ(retransmits, 2u);
  EXPECT_EQ(replies, 1u);
  EXPECT_EQ(timeouts, 0u);

  // Accounting identity: every attempt the tracer saw either died on the
  // partitioned link or was carried by it.
  const net::LinkStats to_server = network_.StatsFor(client_host_, server_host_);
  EXPECT_EQ(to_server.dropped, 2u);
  EXPECT_EQ(to_server.dropped + to_server.packets, sends + retransmits);
  EXPECT_EQ(network_.StatsFor(server_host_, client_host_).dropped, 0u);
}

TEST(StatsMapHistogram, PercentilesFromLogBuckets) {
  StatsMap stats;
  // 90 fast calls (1 ms) and 10 slow outliers (1 s).
  for (int i = 0; i < 90; ++i) {
    stats.BeginCall();
    stats.EndCall("GETATTR", Milliseconds(1));
  }
  for (int i = 0; i < 10; ++i) {
    stats.BeginCall();
    stats.EndCall("GETATTR", Seconds(1));
  }
  // p50 lands in the [512 us, 1024 us) bucket and reports its upper bound;
  // tail percentiles land in the outlier bucket, clamped to the true max.
  EXPECT_EQ(stats.LatencyP50("GETATTR"), Microseconds(1024));
  EXPECT_EQ(stats.LatencyP95("GETATTR"), Seconds(1));
  EXPECT_EQ(stats.LatencyP99("GETATTR"), Seconds(1));
  EXPECT_EQ(stats.LatencyMax("GETATTR"), Seconds(1));
  EXPECT_EQ(stats.LatencyAvg("GETATTR"),
            (90 * Milliseconds(1) + 10 * Seconds(1)) / 100);
  EXPECT_EQ(stats.LatencyPercentile("UNKNOWN", 50), 0);
}

TEST(StatsMapHistogram, ExactBucketEdges) {
  StatsMap stats;
  // Sub-microsecond latencies truncate to 0 and land in the zero bucket; the
  // clamp against the nanosecond max keeps the report exact.
  stats.BeginCall();
  stats.EndCall("NULL", Duration{500});
  EXPECT_EQ(stats.LatencyP50("NULL"), Duration{500});

  // A latency exactly on a power-of-two edge opens the next bucket: 1024 us
  // is the first value of [1024 us, 2048 us), so with 99 samples just below
  // the edge and one exactly on it, p50 reports the lower bucket's upper
  // bound — exactly the edge — and p99 clamps the higher bucket to the max.
  for (int i = 0; i < 99; ++i) {
    stats.BeginCall();
    stats.EndCall("EDGE", Microseconds(1023));
  }
  stats.BeginCall();
  stats.EndCall("EDGE", Microseconds(1024));
  EXPECT_EQ(stats.LatencyP50("EDGE"), Microseconds(1024));
  EXPECT_EQ(stats.LatencyP99("EDGE"), Microseconds(1024));
  EXPECT_EQ(stats.LatencyMax("EDGE"), Microseconds(1024));
}

TEST(StatsMapHistogram, SingleValuePercentilesClampToMax) {
  StatsMap stats;
  stats.BeginCall();
  stats.EndCall("READ", Milliseconds(10));
  // 10 ms sits in the [8192 us, 16384 us) bucket; clamping to max keeps the
  // report exact for a single sample.
  EXPECT_EQ(stats.LatencyP50("READ"), Milliseconds(10));
  EXPECT_EQ(stats.LatencyP99("READ"), Milliseconds(10));
}

}  // namespace
}  // namespace gvfs::rpc
