// Property-style parameterized sweeps over the consistency models'
// invariants:
//
//  - Invalidation polling: a remote change becomes visible within one
//    polling period (plus delivery latency) — the model's staleness bound —
//    for every polling period.
//  - Delegation/callback: a remote change is visible immediately (no
//    staleness window), for every delegation expiry setting.
//  - GETINV batching: the number of polls in one round covers ceil(N/batch)
//    for a range of batch sizes.
#include <gtest/gtest.h>

#include "test_util.h"
#include "workloads/testbed.h"

namespace gvfs::workloads {
namespace {

using kclient::MountOptions;
using kclient::OpenFlags;
using proxy::CacheMode;
using proxy::ConsistencyModel;
using proxy::SessionConfig;
using testutil::RunTask;

constexpr OpenFlags kWrite{.read = true, .write = true};
constexpr OpenFlags kCreateWrite{.read = true, .write = true, .create = true};

sim::Task<void> Advance(sim::Scheduler* sched, Duration d) {
  co_await sim::Sleep(*sched, d);
}

/// Writes `value` into /shared through `writer` (flushed by close).
sim::Task<void> WriteValue(kclient::KernelClient* writer, std::uint8_t value) {
  auto fd = co_await writer->Open("/shared", kCreateWrite);
  if (!fd) co_return;
  (void)co_await writer->Write(*fd, 0, Bytes(16, value));
  (void)co_await writer->Close(*fd);
}

sim::Task<std::uint8_t> ReadValue(kclient::KernelClient* reader) {
  auto fd = co_await reader->Open("/shared", OpenFlags{});
  if (!fd) co_return 0;
  auto data = co_await reader->Read(*fd, 0, 16);
  (void)co_await reader->Close(*fd);
  co_return data && !data->empty() ? (*data)[0] : 0;
}

// ---------------------------------------------------------------------------
// Staleness bound under invalidation polling
// ---------------------------------------------------------------------------

class PollingStalenessBound : public ::testing::TestWithParam<int> {};

TEST_P(PollingStalenessBound, ChangeVisibleWithinOnePeriod) {
  const int period_s = GetParam();

  Testbed bed;
  bed.AddWanClient();
  bed.AddWanClient();
  SessionConfig config;
  config.model = ConsistencyModel::kInvalidationPolling;
  config.poll_period = Seconds(period_s);
  config.poll_max_period = Seconds(period_s);
  // Kernel attribute cache must not extend the window beyond the session's
  // bound (the middleware pairs short polling with a short kernel TTL).
  MountOptions kernel;
  kernel.attr_timeout = Seconds(1);
  auto& session = bed.CreateSession(config, {0, 1}, kernel);

  (void)RunTask(bed.sched(), WriteValue(&session.mount(0), 1));
  EXPECT_EQ(RunTask(bed.sched(), ReadValue(&session.mount(1))), 1);

  (void)RunTask(bed.sched(), WriteValue(&session.mount(0), 2));

  // Property: after (one polling period + kernel TTL + slack) the new value
  // is visible, for every polling period.
  (void)RunTask(bed.sched(), Advance(&bed.sched(), Seconds(period_s + 2)));
  EXPECT_EQ(RunTask(bed.sched(), ReadValue(&session.mount(1))), 2)
      << "staleness exceeded one polling period (" << period_s << " s)";
}

INSTANTIATE_TEST_SUITE_P(Periods, PollingStalenessBound,
                         ::testing::Values(5, 10, 20, 40, 80));

// ---------------------------------------------------------------------------
// No staleness window under delegation/callback
// ---------------------------------------------------------------------------

class DelegationNoStaleness : public ::testing::TestWithParam<int> {};

TEST_P(DelegationNoStaleness, ChangeVisibleImmediately) {
  const int expiry_s = GetParam();

  Testbed bed;
  bed.AddWanClient();
  bed.AddWanClient();
  SessionConfig config;
  config.model = ConsistencyModel::kDelegationCallback;
  config.cache_mode = CacheMode::kWriteBack;
  config.deleg_expiry = Seconds(expiry_s);
  config.deleg_renew = Seconds(expiry_s * 4 / 5);
  MountOptions noac;
  noac.noac = true;
  auto& session = bed.CreateSession(config, {0, 1}, noac);

  (void)RunTask(bed.sched(), WriteValue(&session.mount(0), 1));
  EXPECT_EQ(RunTask(bed.sched(), ReadValue(&session.mount(1))), 1);

  // Interleave writers and readers with zero think time: every read must see
  // the preceding write, at every expiry setting.
  for (std::uint8_t v = 2; v <= 6; ++v) {
    (void)RunTask(bed.sched(), WriteValue(&session.mount(0), v));
    EXPECT_EQ(RunTask(bed.sched(), ReadValue(&session.mount(1))), v)
        << "stale read under strong consistency (expiry " << expiry_s << " s)";
    (void)RunTask(bed.sched(), Advance(&bed.sched(), Seconds(1)));
  }
}

INSTANTIATE_TEST_SUITE_P(Expiries, DelegationNoStaleness,
                         ::testing::Values(10, 60, 600));

// ---------------------------------------------------------------------------
// GETINV batching arithmetic
// ---------------------------------------------------------------------------

class GetInvBatching : public ::testing::TestWithParam<int> {};

TEST_P(GetInvBatching, PollsCoverInvalidationsInBatches) {
  const int batch = GetParam();
  constexpr int kFiles = 40;

  Testbed bed;
  bed.AddWanClient();
  bed.AddWanClient();
  SessionConfig config;
  config.model = ConsistencyModel::kInvalidationPolling;
  config.poll_period = Seconds(10);
  config.poll_max_period = Seconds(10);
  config.getinv_batch = static_cast<std::uint32_t>(batch);
  auto& session = bed.CreateSession(config, {0, 1});
  auto& writer = session.mount(0);
  auto& observer = session.mount(1);

  // Observer caches all files; writer then dirties every one of them.
  for (int i = 0; i < kFiles; ++i) {
    auto ino = bed.fs().Create(bed.fs().root(), "f" + std::to_string(i), 0644);
    ASSERT_TRUE(ino.has_value());
    (void)RunTask(bed.sched(), observer.Stat("/f" + std::to_string(i)));
  }
  (void)RunTask(bed.sched(), Advance(&bed.sched(), Seconds(12)));
  const auto polls_before = session.proxy(1).stats().polls;
  const auto inv_before = session.proxy(1).stats().invalidations_applied;

  for (int i = 0; i < kFiles; ++i) {
    auto fd = RunTask(bed.sched(), writer.Open("/f" + std::to_string(i), kWrite));
    ASSERT_TRUE(fd.has_value());
    (void)RunTask(bed.sched(), writer.Write(*fd, 0, Bytes(4, 1)));
    (void)RunTask(bed.sched(), writer.Close(*fd));
  }
  (void)RunTask(bed.sched(), Advance(&bed.sched(), Seconds(12)));

  // All invalidations delivered, in ceil(N/batch)-sized GETINV replies
  // (poll-again chaining); N here is kFiles plus a handful of directory
  // invalidations, so we check bounds rather than exact equality.
  const auto polls = session.proxy(1).stats().polls - polls_before;
  const auto delivered = session.proxy(1).stats().invalidations_applied - inv_before;
  EXPECT_GE(delivered, static_cast<std::uint64_t>(kFiles));
  EXPECT_GE(polls, static_cast<std::uint64_t>((kFiles + batch - 1) / batch));
  EXPECT_LE(polls, static_cast<std::uint64_t>((kFiles + 2) / batch + 3));
}

INSTANTIATE_TEST_SUITE_P(Batches, GetInvBatching, ::testing::Values(4, 8, 16, 64));

// ---------------------------------------------------------------------------
// Session isolation: per-session models do not interfere
// ---------------------------------------------------------------------------

TEST(SessionIsolation, PollingAndDelegationCoexist) {
  Testbed bed;
  bed.AddWanClient();
  bed.AddWanClient();

  SessionConfig polling;
  polling.model = ConsistencyModel::kInvalidationPolling;
  polling.poll_period = Seconds(10);
  polling.poll_max_period = Seconds(10);
  auto& weak_session = bed.CreateSession(polling, {0});

  SessionConfig strong;
  strong.model = ConsistencyModel::kDelegationCallback;
  strong.cache_mode = CacheMode::kWriteBack;
  MountOptions noac;
  noac.noac = true;
  auto& strong_session = bed.CreateSession(strong, {0, 1}, noac);

  // The strong session's clients interact with full consistency...
  (void)RunTask(bed.sched(), WriteValue(&strong_session.mount(0), 7));
  EXPECT_EQ(RunTask(bed.sched(), ReadValue(&strong_session.mount(1))), 7);

  // ...while the weak session reads the same file through its own proxies.
  EXPECT_EQ(RunTask(bed.sched(), ReadValue(&weak_session.mount(0))), 7);

  // Architectural boundary (per the paper's session model): the polling
  // protocol only reflects modifications observed by the session's OWN
  // proxy server. A write made through a different session is invisible to
  // this session's invalidation buffers, so the weak session keeps serving
  // its cached copy — sessions are isolated consistency domains.
  (void)RunTask(bed.sched(), WriteValue(&strong_session.mount(0), 8));
  (void)RunTask(bed.sched(), Advance(&bed.sched(), Seconds(45)));
  EXPECT_EQ(RunTask(bed.sched(), ReadValue(&weak_session.mount(0))), 7);
  EXPECT_GT(weak_session.proxy(0).stats().polls, 0u);
  EXPECT_GT(strong_session.server->stats().callbacks_sent, 0u);
}

}  // namespace
}  // namespace gvfs::workloads
