// Tests for the windowed RPC pipelining paths: the concurrency toolkit
// (Semaphore/WaitGroup), sliding-window write-back, sequential read-ahead,
// and their interaction with recalls, crashes, and the serialized defaults.
//
// NOTE: coroutine lambdas must not capture (the closure dies before the
// frame); every coroutine here takes its state via parameters.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/concurrency.h"
#include "sim/scheduler.h"
#include "sim/task.h"
#include "test_util.h"
#include "workloads/testbed.h"

namespace gvfs::workloads {
namespace {

using kclient::MountOptions;
using kclient::OpenFlags;
using proxy::CacheMode;
using proxy::ConsistencyModel;
using proxy::SessionConfig;
using testutil::RunTask;

constexpr OpenFlags kRead{};
constexpr OpenFlags kWrite{.read = true, .write = true};
constexpr OpenFlags kCreateWrite{.read = true, .write = true, .create = true};
constexpr std::size_t kBlock = 32 * 1024;

// ---------------------------------------------------------------------------
// Toolkit unit tests
// ---------------------------------------------------------------------------

struct Gauge {
  int current = 0;
  int peak = 0;
};

sim::Task<void> HoldPermit(sim::Scheduler* sched, sim::Semaphore* sem,
                           Gauge* gauge) {
  co_await sem->Acquire();
  gauge->current++;
  gauge->peak = std::max(gauge->peak, gauge->current);
  co_await sim::Sleep(*sched, Seconds(1));
  gauge->current--;
  sem->Release();
}

TEST(SemaphoreTest, BoundsConcurrency) {
  sim::Scheduler sched;
  sim::Semaphore sem(sched, 3);
  Gauge gauge;
  for (int i = 0; i < 10; ++i) sim::Spawn(HoldPermit(&sched, &sem, &gauge));
  sched.Run();
  EXPECT_EQ(gauge.peak, 3);
  EXPECT_EQ(gauge.current, 0);
  EXPECT_EQ(sem.available(), 3u);
  // 10 holders, 3 at a time, 1 s each: four rounds.
  EXPECT_EQ(sched.Now(), Seconds(4));
}

sim::Task<void> SleepAndCount(sim::Scheduler* sched, Duration d, int* done) {
  co_await sim::Sleep(*sched, d);
  ++*done;
}

sim::Task<void> JoinGroup(sim::Scheduler* sched, sim::WaitGroup* wg, int* done,
                          bool* joined) {
  for (int i = 1; i <= 5; ++i) {
    wg->Spawn(SleepAndCount(sched, Seconds(i), done));
  }
  co_await wg->Wait();
  *joined = true;
  EXPECT_EQ(*done, 5);
  // Wait() completes immediately when nothing is outstanding.
  co_await wg->Wait();
}

TEST(WaitGroupTest, WaitJoinsAllSpawnedTasks) {
  sim::Scheduler sched;
  sim::WaitGroup wg(sched);
  int done = 0;
  bool joined = false;
  sim::Spawn(JoinGroup(&sched, &wg, &done, &joined));
  sched.Run();
  EXPECT_TRUE(joined);
  EXPECT_EQ(wg.Outstanding(), 0);
  EXPECT_EQ(sched.Now(), Seconds(5));  // slowest task, not the sum
}

// ---------------------------------------------------------------------------
// End-to-end pipelining
// ---------------------------------------------------------------------------

SessionConfig PipelineConfig() {
  SessionConfig config;
  config.model = ConsistencyModel::kDelegationCallback;
  config.cache_mode = CacheMode::kWriteBack;
  config.deleg_expiry = Seconds(600);
  config.deleg_renew = Seconds(480);
  config.wb_flush_period = 0;  // flush driven by recalls/shutdown
  return config;
}

MountOptions NoacKernel() {
  MountOptions options;
  options.noac = true;
  return options;
}

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest() {
    bed_.AddWanClient();
    bed_.AddWanClient();
  }

  sim::Task<void> Advance(Duration d) { co_await sim::Sleep(bed_.sched(), d); }

  /// Dirties `blocks` cache blocks of `path` on mount 0 (block i holds
  /// i + 1). The first WRITE goes upstream to acquire the write delegation;
  /// the rest are absorbed into the disk cache.
  void DirtyFile(GvfsSession& session, const std::string& path, int blocks) {
    auto fd = RunTask(bed_.sched(), session.mount(0).Open(path, kCreateWrite));
    ASSERT_TRUE(fd.has_value());
    for (int i = 0; i < blocks; ++i) {
      Bytes payload(kBlock, static_cast<std::uint8_t>(i + 1));
      (void)RunTask(bed_.sched(),
                    session.mount(0).Write(*fd, i * kBlock, payload));
    }
    (void)RunTask(bed_.sched(), session.mount(0).Close(*fd));
  }

  Testbed bed_;
};

TEST_F(PipelineTest, WindowedFlushRespectsWindowCap) {
  SessionConfig config = PipelineConfig();
  config.wb_window = 4;
  auto& session = bed_.CreateSession(config, {0}, NoacKernel());
  DirtyFile(session, "/win", 13);
  const nfs3::Fh fh{1, *bed_.fs().ResolvePath("/win")};
  const std::size_t dirty = session.proxy(0).cache().DirtyBlockCount(fh);
  ASSERT_GE(dirty, 12u);

  session.stats->Reset();
  (void)RunTask(bed_.sched(), session.proxy(0).FlushAll());

  // The window filled up but never exceeded its cap, and every dirty block
  // went out exactly once, covered by one coalesced COMMIT.
  EXPECT_EQ(session.stats->PeakInFlight(), 4u);
  EXPECT_EQ(session.stats->Calls("WRITE"), dirty);
  EXPECT_EQ(session.stats->Calls("COMMIT"), 1u);
  EXPECT_EQ(session.proxy(0).cache().DirtyBlockCount(fh), 0u);

  // The parallel flush wrote correct data for every block.
  auto ino = bed_.fs().ResolvePath("/win");
  for (int i = 0; i < 13; ++i) {
    auto data = bed_.fs().Read(*ino, i * kBlock, kBlock);
    ASSERT_TRUE(data.has_value());
    ASSERT_FALSE(data->data.empty());
    EXPECT_EQ(data->data[0], i + 1) << "block " << i;
  }
}

TEST_F(PipelineTest, DefaultWindowKeepsSerialRpcPattern) {
  // wb_window defaults to 1: the flush must look exactly like the
  // pre-pipelining serial path (one WRITE in flight at a time).
  auto& session = bed_.CreateSession(PipelineConfig(), {0}, NoacKernel());
  ASSERT_EQ(session.proxy(0).config().wb_window, 1u);
  ASSERT_EQ(session.proxy(0).config().read_ahead, 0u);
  DirtyFile(session, "/serial", 9);
  const nfs3::Fh fh{1, *bed_.fs().ResolvePath("/serial")};
  const std::size_t dirty = session.proxy(0).cache().DirtyBlockCount(fh);
  ASSERT_GE(dirty, 8u);

  session.stats->Reset();
  (void)RunTask(bed_.sched(), session.proxy(0).FlushAll());
  EXPECT_EQ(session.stats->PeakInFlight(), 1u);
  EXPECT_EQ(session.stats->Calls("WRITE"), dirty);
  EXPECT_EQ(session.stats->Calls("COMMIT"), 1u);
}

TEST_F(PipelineTest, WindowedFlushIsFasterThanSerial) {
  SessionConfig serial = PipelineConfig();
  SessionConfig windowed = PipelineConfig();
  windowed.wb_window = 8;
  auto& s1 = bed_.CreateSession(serial, {0}, NoacKernel());
  auto& s2 = bed_.CreateSession(windowed, {1}, NoacKernel());
  DirtyFile(s1, "/a", 16);
  {
    // s2 was created on client 1 only, so its single mount/proxy is index 0.
    auto fd = RunTask(bed_.sched(), s2.mount(0).Open("/b", kCreateWrite));
    for (int i = 0; i < 16; ++i) {
      (void)RunTask(bed_.sched(), s2.mount(0).Write(
                                      *fd, i * kBlock,
                                      Bytes(kBlock, static_cast<std::uint8_t>(i + 1))));
    }
    (void)RunTask(bed_.sched(), s2.mount(0).Close(*fd));
  }

  const SimTime t0 = bed_.sched().Now();
  (void)RunTask(bed_.sched(), s1.proxy(0).FlushAll());
  const Duration serial_elapsed = bed_.sched().Now() - t0;

  const SimTime t1 = bed_.sched().Now();
  (void)RunTask(bed_.sched(), s2.proxy(0).FlushAll());
  const Duration windowed_elapsed = bed_.sched().Now() - t1;

  // The window overlaps the per-RPC round trips; even on a shared 4 Mbps
  // link (where serialization delay is irreducible) it is clearly faster.
  EXPECT_LT(windowed_elapsed, serial_elapsed);
}

TEST_F(PipelineTest, RecallMidFlushDrainsWindowBeforeRelease) {
  SessionConfig config = PipelineConfig();
  config.wb_window = 8;
  auto& session = bed_.CreateSession(config, {0, 1}, NoacKernel());
  DirtyFile(session, "/contended", 16);
  const nfs3::Fh fh{1, *bed_.fs().ResolvePath("/contended")};
  const std::size_t dirty = session.proxy(0).cache().DirtyBlockCount(fh);
  ASSERT_GE(dirty, 15u);
  session.stats->Reset();

  // Kick off the windowed flush in the background, then read from the other
  // client while the window is in flight: the recall's flush must wait for
  // the window to drain (per-file lock), and the reader then sees every
  // byte — with no duplicate WRITEs from the two flushers racing.
  sim::Spawn(session.proxy(0).FlushAll());
  auto fd_b = RunTask(bed_.sched(), session.mount(1).Open("/contended", kRead));
  ASSERT_TRUE(fd_b.has_value());
  auto data = RunTask(bed_.sched(), session.mount(1).Read(*fd_b, 9 * kBlock, kBlock));
  ASSERT_TRUE(data.has_value());
  ASSERT_FALSE(data->empty());
  EXPECT_EQ((*data)[0], 10);

  (void)RunTask(bed_.sched(), Advance(Seconds(5)));
  EXPECT_EQ(session.stats->Calls("WRITE"), dirty);
  EXPECT_EQ(session.proxy(0).cache().DirtyBlockCount(fh), 0u);
  EXPECT_GT(session.proxy(0).stats().callbacks_received, 0u);
}

TEST_F(PipelineTest, CrashMidFlushNeverMarksBlocksClean) {
  SessionConfig config = PipelineConfig();
  config.wb_window = 8;
  auto& session = bed_.CreateSession(config, {0}, NoacKernel());
  DirtyFile(session, "/crashy", 16);
  const nfs3::Fh fh{1, *bed_.fs().ResolvePath("/crashy")};
  const std::size_t dirty_before = session.proxy(0).cache().DirtyBlockCount(fh);
  ASSERT_GE(dirty_before, 15u);
  const std::uint64_t flushed_before = session.proxy(0).stats().blocks_flushed;

  // Let the window get airborne, then crash with WRITEs in flight.
  sim::Spawn(session.proxy(0).FlushAll());
  (void)RunTask(bed_.sched(), Advance(Milliseconds(250)));
  session.proxy(0).Crash();
  (void)RunTask(bed_.sched(), Advance(Seconds(30)));  // stale tasks drain

  // Accounting invariant: a WRITE whose reply arrived after the crash must
  // not have marked its block clean (the recovery re-scan depends on the
  // dirty flags). Every block is either still dirty or was counted flushed
  // strictly before the crash.
  const std::uint64_t flushed =
      session.proxy(0).stats().blocks_flushed - flushed_before;
  EXPECT_EQ(session.proxy(0).cache().DirtyBlockCount(fh) + flushed, dirty_before);
  EXPECT_LT(flushed, dirty_before);  // the crash really did interrupt it
}

TEST_F(PipelineTest, ReadAheadPipelinesSequentialScan) {
  SessionConfig config = PipelineConfig();
  config.read_ahead = 4;
  auto& session = bed_.CreateSession(config, {0}, NoacKernel());

  // Materialize a 16-block file on the server.
  auto ino = bed_.fs().Create(bed_.fs().root(), "seq", 0644);
  ASSERT_TRUE(ino.has_value());
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(bed_.fs()
                    .Write(*ino, i * kBlock,
                           Bytes(kBlock, static_cast<std::uint8_t>(i + 1)))
                    .has_value());
  }

  auto fd = RunTask(bed_.sched(), session.mount(0).Open("/seq", kRead));
  ASSERT_TRUE(fd.has_value());
  for (int i = 0; i < 16; ++i) {
    auto data = RunTask(bed_.sched(), session.mount(0).Read(*fd, i * kBlock, kBlock));
    ASSERT_TRUE(data.has_value());
    ASSERT_FALSE(data->empty());
    EXPECT_EQ((*data)[0], i + 1) << "block " << i;
  }

  // The scan was detected and pipelined: blocks arrived via read-ahead, and
  // no block was fetched twice (demand misses join the in-flight prefetch).
  EXPECT_GT(session.proxy(0).stats().blocks_prefetched, 8u);
  EXPECT_LE(session.stats->Calls("READ"), 16u);
}

TEST_F(PipelineTest, ReadAheadNeverServesStaleBlockAfterInvalidation) {
  SessionConfig config = PipelineConfig();
  config.read_ahead = 4;
  auto& session = bed_.CreateSession(config, {0, 1}, NoacKernel());

  auto ino = bed_.fs().Create(bed_.fs().root(), "hot", 0644);
  ASSERT_TRUE(ino.has_value());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(bed_.fs().Write(*ino, i * kBlock, Bytes(kBlock, 1)).has_value());
  }

  // Client 0 scans the head of the file, which launches prefetches of the
  // blocks behind the read pointer.
  auto fd = RunTask(bed_.sched(), session.mount(0).Open("/hot", kRead));
  ASSERT_TRUE(fd.has_value());
  (void)RunTask(bed_.sched(), session.mount(0).Read(*fd, 0, kBlock));
  (void)RunTask(bed_.sched(), session.mount(0).Read(*fd, kBlock, kBlock));

  // Client 1 overwrites block 4; strong consistency recalls client 0's read
  // delegation before the write proceeds.
  auto fd_b = RunTask(bed_.sched(), session.mount(1).Open("/hot", kWrite));
  ASSERT_TRUE(fd_b.has_value());
  (void)RunTask(bed_.sched(), session.mount(1).Write(*fd_b, 4 * kBlock,
                                                     Bytes(kBlock, 9)));
  (void)RunTask(bed_.sched(), session.mount(1).Close(*fd_b));
  (void)RunTask(bed_.sched(), session.proxy(1).FlushAll());

  // Client 0 now reads block 4. Whatever the prefetches were doing around
  // the invalidation, it must see client 1's bytes — a prefetched copy must
  // never re-validate invalidated attributes or shadow the fresh data.
  auto data = RunTask(bed_.sched(), session.mount(0).Read(*fd, 4 * kBlock, kBlock));
  ASSERT_TRUE(data.has_value());
  ASSERT_FALSE(data->empty());
  EXPECT_EQ((*data)[0], 9);
}

TEST_F(PipelineTest, ShutdownDrainsWindowedFlush) {
  SessionConfig config = PipelineConfig();
  config.wb_window = 8;
  auto& session = bed_.CreateSession(config, {0}, NoacKernel());
  DirtyFile(session, "/bye", 12);
  const nfs3::Fh fh{1, *bed_.fs().ResolvePath("/bye")};
  ASSERT_GE(session.proxy(0).cache().DirtyBlockCount(fh), 11u);

  (void)RunTask(bed_.sched(), session.proxy(0).Shutdown());
  EXPECT_FALSE(session.proxy(0).running());
  EXPECT_EQ(session.proxy(0).cache().DirtyBlockCount(fh), 0u);

  auto ino = bed_.fs().ResolvePath("/bye");
  for (int i = 0; i < 12; ++i) {
    auto data = bed_.fs().Read(*ino, i * kBlock, kBlock);
    ASSERT_TRUE(data.has_value());
    ASSERT_FALSE(data->data.empty());
    EXPECT_EQ(data->data[0], i + 1) << "block " << i;
  }
}

}  // namespace
}  // namespace gvfs::workloads
