// Tests for the consistency observatory (src/metrics/): registry instrument
// semantics, log-histogram bucket boundaries, sim-clock sampler determinism
// (two identical runs must produce byte-identical time series), and the
// staleness probe — both its filtering rules in isolation and the end-to-end
// bound under invalidation polling (measured staleness stays within the
// polling period plus round trips).
#include <gtest/gtest.h>

#include <string>

#include "metrics/export.h"
#include "metrics/histogram.h"
#include "metrics/registry.h"
#include "metrics/sampler.h"
#include "metrics/staleness.h"
#include "sim/sync.h"
#include "test_util.h"
#include "workloads/testbed.h"

namespace gvfs::workloads {
namespace {

using kclient::OpenFlags;
using proxy::ConsistencyModel;
using proxy::SessionConfig;
using testutil::RunTask;

constexpr OpenFlags kRead{.read = true};
constexpr OpenFlags kCreateWrite{.read = true, .write = true, .create = true};

// ---------------------------------------------------------------------------
// LogHistogram
// ---------------------------------------------------------------------------

TEST(LogHistogram, BucketBoundariesArePowersOfTwo) {
  using metrics::LogHistogram;
  // Bucket 0 holds only value 0; bucket b holds [2^(b-1), 2^b).
  EXPECT_EQ(LogHistogram::BucketFor(0), 0u);
  EXPECT_EQ(LogHistogram::BucketFor(1), 1u);
  EXPECT_EQ(LogHistogram::BucketFor(2), 2u);
  EXPECT_EQ(LogHistogram::BucketFor(3), 2u);
  EXPECT_EQ(LogHistogram::BucketFor(4), 3u);
  EXPECT_EQ(LogHistogram::BucketFor(1023), 10u);
  EXPECT_EQ(LogHistogram::BucketFor(1024), 11u);
  // Values beyond the last bucket's range saturate into it.
  EXPECT_EQ(LogHistogram::BucketFor(std::uint64_t{1} << 50),
            LogHistogram::kBuckets - 1);
  EXPECT_EQ(LogHistogram::BucketUpperBound(0), 1u);
  EXPECT_EQ(LogHistogram::BucketUpperBound(10), 1024u);
}

TEST(LogHistogram, PercentilesClampToRecordedMax) {
  metrics::LogHistogram hist;
  hist.Record(100);
  // Single sample: the [64, 128) bucket's upper bound would over-report, so
  // the percentile clamps to the recorded max.
  EXPECT_EQ(hist.Percentile(50), 100u);
  EXPECT_EQ(hist.Percentile(99), 100u);
  EXPECT_EQ(hist.PercentileBucketUpperBound(50), 128u);

  // Two-bucket distribution: p50 stays in the fast bucket, the tail reaches
  // the outlier.
  for (int i = 0; i < 89; ++i) hist.Record(100);
  for (int i = 0; i < 10; ++i) hist.Record(1000);
  EXPECT_EQ(hist.Percentile(50), 128u);
  EXPECT_EQ(hist.Percentile(95), 1000u);
  EXPECT_EQ(hist.Percentile(99), 1000u);
  EXPECT_EQ(hist.count(), 100u);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, InstrumentReferencesSurviveLaterInsertions) {
  metrics::Registry registry;
  metrics::Counter& counter = registry.GetCounter("a");
  counter.Inc();
  for (int i = 0; i < 64; ++i) {
    registry.GetCounter("filler" + std::to_string(i));
  }
  counter.Inc(2);
  EXPECT_EQ(registry.GetCounter("a").value(), 3u);
  registry.GetGauge("g").Set(1.5);
  EXPECT_DOUBLE_EQ(registry.GetGauge("g").value(), 1.5);
}

TEST(MetricsRegistry, ReRegisteringNameReturnsSameInstance) {
  metrics::Registry registry;
  metrics::Counter& counter = registry.GetCounter("dup");
  counter.Inc(5);
  // A second Get* under the same name must hand back the same instrument,
  // not a fresh zeroed one — two subsystems sharing a name share the count.
  EXPECT_EQ(&registry.GetCounter("dup"), &counter);
  EXPECT_EQ(registry.GetCounter("dup").value(), 5u);

  metrics::Gauge& gauge = registry.GetGauge("dup");  // separate namespace
  gauge.Set(2.5);
  EXPECT_EQ(&registry.GetGauge("dup"), &gauge);
  EXPECT_DOUBLE_EQ(registry.GetGauge("dup").value(), 2.5);
  EXPECT_EQ(registry.counters().size(), 1u);
  EXPECT_EQ(registry.gauges().size(), 1u);

  // Probes differ by design: re-registering replaces the callback.
  registry.AddProbe("p", [] { return 1.0; });
  registry.AddProbe("p", [] { return 2.0; });
  ASSERT_EQ(registry.probes().size(), 1u);
  EXPECT_DOUBLE_EQ(registry.probes().at("p")(), 2.0);
}

TEST(MetricsSampler, ProbesEvaluateAtSampleTime) {
  sim::Scheduler sched;
  metrics::Registry registry;
  double live = 1.0;
  registry.AddProbe("probe", [&live] { return live; });
  metrics::Sampler sampler(sched, registry, Seconds(1));
  sampler.SampleNow();
  live = 2.0;
  sampler.SampleNow();
  ASSERT_EQ(sampler.series().size(), 2u);
  auto value_of = [](const metrics::Sample& sample, const std::string& name) {
    for (const auto& [col, val] : sample.values) {
      if (col == name) return val;
    }
    return -1.0;
  };
  EXPECT_DOUBLE_EQ(value_of(sampler.series()[0], "probe"), 1.0);
  EXPECT_DOUBLE_EQ(value_of(sampler.series()[1], "probe"), 2.0);
}

TEST(MetricsExport, CsvAndPrometheusCarryEveryInstrument) {
  sim::Scheduler sched;
  metrics::Registry registry;
  registry.GetCounter("requests").Inc(7);
  registry.GetGauge("depth").Set(3.0);
  registry.GetHistogram("lat_us").Record(100);
  metrics::Sampler sampler(sched, registry, Seconds(1));
  sampler.SampleNow();

  const std::string csv = metrics::TimeSeriesCsv(sampler.series());
  EXPECT_NE(csv.find("requests"), std::string::npos);
  EXPECT_NE(csv.find("lat_us.p99"), std::string::npos);
  const std::string prom = metrics::PrometheusText(registry);
  EXPECT_NE(prom.find("requests 7"), std::string::npos);
  EXPECT_NE(prom.find("lat_us_count 1"), std::string::npos);
}

TEST(MetricsExport, PrometheusEscapesLabelValues) {
  metrics::Registry registry;
  // A label value carrying every character the exposition format escapes.
  const std::string name =
      metrics::Labeled("migrations", "mode", "read\"deleg\\x\ny");
  registry.GetCounter(name).Inc(3);

  const std::string prom = metrics::PrometheusText(registry);
  // The exported line carries the escaped forms \" \\ \n on one line — a
  // raw newline or quote in the value would corrupt the exposition.
  EXPECT_NE(prom.find("migrations{mode=\"read\\\"deleg\\\\x\\ny\"} 3"),
            std::string::npos)
      << prom;
  EXPECT_EQ(prom.find("read\"deleg"), std::string::npos);  // raw quote gone
  EXPECT_EQ(prom.find("deleg\\x\ny"), std::string::npos);  // raw newline gone

  // The metric name proper is still sanitized, label block untouched.
  registry.GetGauge(metrics::Labeled("queue depth", "shard", "s-0")).Set(1.0);
  const std::string prom2 = metrics::PrometheusText(registry);
  EXPECT_NE(prom2.find("queue_depth{shard=\"s-0\"} 1"), std::string::npos)
      << prom2;
}

// ---------------------------------------------------------------------------
// Staleness probe (unit)
// ---------------------------------------------------------------------------

TEST(StalenessProbe, RecordsAgeOfOldestMissedForeignVersion) {
  metrics::Registry registry;
  metrics::Histogram& hist = registry.GetHistogram("staleness_us");
  metrics::StalenessProbe probe;
  probe.SetHistogram(&hist);

  probe.StampVersion(1, 42, Seconds(1), /*writer_host=*/2);
  probe.StampVersion(1, 42, Seconds(2), /*writer_host=*/2);

  // Reader fetched before both versions and reads at t=5 s: the oldest
  // missed version (t=1 s) makes the view 4 s stale.
  probe.OnCachedRead(1, 42, /*reader_host=*/1, /*fetched_at=*/0,
                     /*now=*/Seconds(5));
  EXPECT_EQ(hist.hist().count(), 1u);
  EXPECT_EQ(hist.hist().max(), 4'000'000u);

  // After a refresh at t=3 s both versions count as seen: the read is fresh
  // and records 0 (the histogram covers every cached read).
  probe.OnCachedRead(1, 42, 1, /*fetched_at=*/Seconds(3), /*now=*/Seconds(6));
  EXPECT_EQ(hist.hist().count(), 2u);
  EXPECT_EQ(hist.hist().buckets()[0], 1u);

  // The writer's own cached reads never count its writes as missed.
  probe.OnCachedRead(1, 42, /*reader_host=*/2, /*fetched_at=*/0,
                     /*now=*/Seconds(10));
  EXPECT_EQ(hist.hist().count(), 3u);
  EXPECT_EQ(hist.hist().buckets()[0], 2u);

  // Reads of files never stamped record 0 as well.
  probe.OnCachedRead(1, 99, 1, 0, Seconds(10));
  EXPECT_EQ(hist.hist().buckets()[0], 3u);
}

// ---------------------------------------------------------------------------
// End-to-end: sampler determinism and the staleness bound under polling
// ---------------------------------------------------------------------------

constexpr Duration kPollPeriod = Seconds(2);

sim::Task<void> ReadLoop(sim::Scheduler& sched, kclient::KernelClient& mount,
                         const char* path, int rounds, Duration gap) {
  for (int i = 0; i < rounds; ++i) {
    auto fd = co_await mount.Open(path, kRead);
    if (fd.has_value()) {
      (void)co_await mount.Read(*fd, 0, 64);
      (void)co_await mount.Close(*fd);
    }
    co_await sim::Sleep(sched, gap);
  }
}

sim::Task<void> WriteLoop(sim::Scheduler& sched, kclient::KernelClient& mount,
                          const char* path, int rounds, Duration gap) {
  for (int i = 0; i < rounds; ++i) {
    auto fd = co_await mount.Open(path, kCreateWrite);
    if (fd.has_value()) {
      (void)co_await mount.Write(*fd, 0, Bytes(256, static_cast<std::uint8_t>(i + 1)));
      (void)co_await mount.Close(*fd);
    }
    co_await sim::Sleep(sched, gap);
  }
}

sim::Task<void> WriterReaderWorkload(sim::Scheduler& sched,
                                     GvfsSession& session) {
  // Client 1 seeds the file, client 0 caches it, then both loop: the writer
  // mutates every 3 s while the reader polls its cache every 100 ms.
  co_await WriteLoop(sched, session.mount(1), "/shared", 1, Milliseconds(1));
  co_await ReadLoop(sched, session.mount(0), "/shared", 1, Milliseconds(1));
  sim::WaitGroup tasks(sched);
  tasks.Spawn(WriteLoop(sched, session.mount(1), "/shared", 4, Seconds(3)));
  tasks.Spawn(ReadLoop(sched, session.mount(0), "/shared", 150,
                       Milliseconds(100)));
  co_await tasks.Wait();
}

/// Builds a two-client polling testbed, runs the writer/reader workload with
/// metrics enabled, and returns the testbed for assertions.
std::unique_ptr<Testbed> RunObservedScenario() {
  auto bed = std::make_unique<Testbed>();
  bed->AddWanClient();
  bed->AddWanClient();
  bed->EnableMetrics(Milliseconds(500));

  SessionConfig config;
  config.model = ConsistencyModel::kInvalidationPolling;
  config.poll_period = kPollPeriod;
  config.poll_max_period = kPollPeriod;
  kclient::MountOptions noac;
  noac.noac = true;
  auto& session = bed->CreateSession(config, {0, 1}, noac);

  RunTask(bed->sched(), WriterReaderWorkload(bed->sched(), session));
  RunTask(bed->sched(), session.Shutdown());
  bed->metrics_sampler()->Stop();
  bed->metrics_sampler()->SampleNow();
  return bed;
}

TEST(MetricsSampler, IdenticalRunsProduceByteIdenticalSeries) {
  const std::string first =
      metrics::TimeSeriesCsv(RunObservedScenario()->metrics_sampler()->series());
  const std::string second =
      metrics::TimeSeriesCsv(RunObservedScenario()->metrics_sampler()->series());
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(StalenessProbe, BoundedByPollingPeriodPlusRoundTrips) {
  auto bed = RunObservedScenario();
  const auto& hist =
      bed->metrics_registry()->GetHistogram("s0.staleness_us").hist();
  ASSERT_GT(hist.count(), 0u);
  // A version born right after a poll is invalidated at most one period plus
  // one round trip later; the next read refreshes. Allow 2x RTT of slack for
  // the refresh itself (40 ms paper RTT).
  const Duration rtt = 2 * TestbedConfig{}.wan.one_way_latency;
  const auto bound_us =
      static_cast<std::uint64_t>((kPollPeriod + 2 * rtt) / kMicrosecond);
  EXPECT_GT(hist.max(), 0u);  // the workload does observe staleness
  EXPECT_LE(hist.Percentile(99), bound_us);
}

TEST(StalenessProbe, ZeroWithoutForeignWrites) {
  Testbed bed;
  bed.AddWanClient();
  bed.EnableMetrics(Milliseconds(500));

  SessionConfig config;
  config.model = ConsistencyModel::kInvalidationPolling;
  config.poll_period = kPollPeriod;
  config.poll_max_period = kPollPeriod;
  kclient::MountOptions noac;
  noac.noac = true;
  auto& session = bed.CreateSession(config, {0}, noac);

  RunTask(bed.sched(),
          WriteLoop(bed.sched(), session.mount(0), "/own", 1, Milliseconds(1)));
  RunTask(bed.sched(),
          ReadLoop(bed.sched(), session.mount(0), "/own", 20, Milliseconds(100)));
  RunTask(bed.sched(), session.Shutdown());

  const auto& hist =
      bed.metrics_registry()->GetHistogram("s0.staleness_us").hist();
  ASSERT_GT(hist.count(), 0u);
  // Every read either hits the writer's own versions or fresh data: all
  // samples are 0.
  EXPECT_EQ(hist.max(), 0u);
}

}  // namespace
}  // namespace gvfs::workloads
