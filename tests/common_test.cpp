#include <gtest/gtest.h>

#include <set>

#include "common/expected.h"
#include "common/rng.h"
#include "common/types.h"

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/flat_map.h"

namespace gvfs {
namespace {

TEST(TimeTest, UnitConversions) {
  EXPECT_EQ(Seconds(1), 1'000'000'000);
  EXPECT_EQ(Milliseconds(40), 40'000'000);
  EXPECT_EQ(Microseconds(3), 3'000);
  EXPECT_EQ(SecondsF(0.5), 500'000'000);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(42)), 42.0);
  EXPECT_DOUBLE_EQ(ToSeconds(Milliseconds(1500)), 1.5);
}

TEST(ExpectedTest, HoldsValue) {
  Expected<int, std::string> e = 42;
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(*e, 42);
  EXPECT_EQ(e.value_or(7), 42);
}

TEST(ExpectedTest, HoldsError) {
  Expected<int, std::string> e = Unexpected(std::string("boom"));
  ASSERT_FALSE(e.has_value());
  EXPECT_EQ(e.error(), "boom");
  EXPECT_EQ(e.value_or(7), 7);
}

TEST(ExpectedTest, VoidSpecialization) {
  Expected<void, int> ok{};
  EXPECT_TRUE(ok.has_value());
  Expected<void, int> bad = Unexpected(5);
  ASSERT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error(), 5);
}

TEST(ExpectedTest, MoveOnlyValue) {
  Expected<std::unique_ptr<int>, int> e = std::make_unique<int>(9);
  ASSERT_TRUE(e.has_value());
  auto p = std::move(e).value();
  EXPECT_EQ(*p, 9);
}

TEST(ExpectedTest, ArrowOperator) {
  Expected<std::string, int> e = std::string("hello");
  EXPECT_EQ(e->size(), 5u);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, RangeInclusiveBounds) {
  Rng r(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    auto v = r.Range(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, BelowBound) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.Below(10), 10u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

// --- FlatMap ---------------------------------------------------------------

TEST(FlatMapTest, InsertFindEraseBasics) {
  FlatMap<std::uint64_t, int> m;
  EXPECT_TRUE(m.Empty());
  EXPECT_EQ(m.Find(7), nullptr);
  EXPECT_FALSE(m.Erase(7));

  m[7] = 70;
  m[8] = 80;
  EXPECT_EQ(m.Size(), 2u);
  ASSERT_NE(m.Find(7), nullptr);
  EXPECT_EQ(*m.Find(7), 70);
  m[7] = 71;  // overwrite through operator[]
  EXPECT_EQ(*m.Find(7), 71);
  EXPECT_EQ(m.Size(), 2u);

  EXPECT_TRUE(m.Erase(7));
  EXPECT_EQ(m.Find(7), nullptr);
  EXPECT_FALSE(m.Erase(7));
  EXPECT_EQ(m.Size(), 1u);
  EXPECT_EQ(*m.Find(8), 80);
}

TEST(FlatMapTest, ExtractMovesValueOut) {
  FlatMap<std::uint32_t, std::unique_ptr<int>> m;
  m[5] = std::make_unique<int>(55);
  std::unique_ptr<int> out;
  EXPECT_FALSE(m.Extract(6, &out));
  EXPECT_TRUE(m.Extract(5, &out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 55);
  EXPECT_EQ(m.Find(5), nullptr);
  EXPECT_TRUE(m.Empty());
}

// Identity hash exposes the probe geometry: keys sharing a home slot form a
// cluster we can aim at the end of the table to exercise the wrapped case of
// backward-shift deletion.
struct IdentityHash {
  std::uint64_t operator()(std::uint64_t k) const { return k; }
};

TEST(FlatMapTest, BackwardShiftCompactsWrappedCluster) {
  FlatMap<std::uint64_t, int, IdentityHash> m;
  m[0] = 0;  // occupy slot 0 so the cluster's wrap is visible
  // Table capacity is 16 after the first insert: keys 14, 30, 46 all have
  // home slot 14, landing at slots 14, 15, 0(wrapped past key 0... probing
  // finds 1). Erasing 14 must backward-shift BOTH collided keys across the
  // wrap boundary, leaving every survivor findable.
  m[14] = 14;
  m[30] = 30;
  m[46] = 46;
  m[15] = 15;  // home 15, displaced by the cluster
  ASSERT_EQ(m.Size(), 5u);

  EXPECT_TRUE(m.Erase(14));
  EXPECT_EQ(m.Find(14), nullptr);
  for (std::uint64_t k : {0ull, 30ull, 46ull, 15ull}) {
    ASSERT_NE(m.Find(k), nullptr) << "lost key " << k << " after shift";
    EXPECT_EQ(*m.Find(k), static_cast<int>(k));
  }

  EXPECT_TRUE(m.Erase(30));
  EXPECT_TRUE(m.Erase(46));
  for (std::uint64_t k : {0ull, 15ull}) {
    ASSERT_NE(m.Find(k), nullptr);
    EXPECT_EQ(*m.Find(k), static_cast<int>(k));
  }
}

TEST(FlatMapTest, ChurnMatchesReferenceMap) {
  // The DRC workload in miniature: sustained insert/erase churn at steady
  // state, checked move-for-move against std::unordered_map. Narrow key
  // space forces collisions, clusters, and wraparound shifts.
  FlatMap<std::uint64_t, int> m;
  std::unordered_map<std::uint64_t, int> ref;
  Rng rng(0x5eed);
  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t key = rng.Below(512);
    switch (rng.Below(3)) {
      case 0: {
        const int val = static_cast<int>(rng.Below(1 << 20));
        m[key] = val;
        ref[key] = val;
        break;
      }
      case 1: {
        EXPECT_EQ(m.Erase(key), ref.erase(key) > 0) << "step " << step;
        break;
      }
      default: {
        int* found = m.Find(key);
        auto it = ref.find(key);
        ASSERT_EQ(found != nullptr, it != ref.end()) << "step " << step;
        if (found != nullptr) {
          EXPECT_EQ(*found, it->second);
        }
        break;
      }
    }
    ASSERT_EQ(m.Size(), ref.size()) << "step " << step;
  }
  // Final contents must agree exactly.
  std::size_t visited = 0;
  m.ForEach([&](std::uint64_t k, int v) {
    ++visited;
    auto it = ref.find(k);
    ASSERT_NE(it, ref.end()) << "phantom key " << k;
    EXPECT_EQ(v, it->second);
  });
  EXPECT_EQ(visited, ref.size());
}

}  // namespace
}  // namespace gvfs
