#include <gtest/gtest.h>

#include <set>

#include "common/expected.h"
#include "common/rng.h"
#include "common/types.h"

namespace gvfs {
namespace {

TEST(TimeTest, UnitConversions) {
  EXPECT_EQ(Seconds(1), 1'000'000'000);
  EXPECT_EQ(Milliseconds(40), 40'000'000);
  EXPECT_EQ(Microseconds(3), 3'000);
  EXPECT_EQ(SecondsF(0.5), 500'000'000);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(42)), 42.0);
  EXPECT_DOUBLE_EQ(ToSeconds(Milliseconds(1500)), 1.5);
}

TEST(ExpectedTest, HoldsValue) {
  Expected<int, std::string> e = 42;
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(*e, 42);
  EXPECT_EQ(e.value_or(7), 42);
}

TEST(ExpectedTest, HoldsError) {
  Expected<int, std::string> e = Unexpected(std::string("boom"));
  ASSERT_FALSE(e.has_value());
  EXPECT_EQ(e.error(), "boom");
  EXPECT_EQ(e.value_or(7), 7);
}

TEST(ExpectedTest, VoidSpecialization) {
  Expected<void, int> ok{};
  EXPECT_TRUE(ok.has_value());
  Expected<void, int> bad = Unexpected(5);
  ASSERT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error(), 5);
}

TEST(ExpectedTest, MoveOnlyValue) {
  Expected<std::unique_ptr<int>, int> e = std::make_unique<int>(9);
  ASSERT_TRUE(e.has_value());
  auto p = std::move(e).value();
  EXPECT_EQ(*p, 9);
}

TEST(ExpectedTest, ArrowOperator) {
  Expected<std::string, int> e = std::string("hello");
  EXPECT_EQ(e->size(), 5u);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, RangeInclusiveBounds) {
  Rng r(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    auto v = r.Range(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, BelowBound) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.Below(10), 10u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace gvfs
