// Failure-injection tests: network partitions, crashes mid-protocol, lost
// replies, and combined failures across the GVFS consistency machinery
// (§4.2.3 and §4.3.4 of the paper).
#include <gtest/gtest.h>

#include "test_util.h"
#include "trace_oracle.h"
#include "workloads/testbed.h"

namespace gvfs::workloads {
namespace {

using kclient::MountOptions;
using kclient::OpenFlags;
using nfs3::Status;
using proxy::CacheMode;
using proxy::ConsistencyModel;
using proxy::SessionConfig;
using testutil::RunTask;

constexpr OpenFlags kRead{};
constexpr OpenFlags kWrite{.read = true, .write = true};
constexpr OpenFlags kCreateWrite{.read = true, .write = true, .create = true};

SessionConfig Polling(Duration period) {
  SessionConfig config;
  config.model = ConsistencyModel::kInvalidationPolling;
  config.poll_period = period;
  config.poll_max_period = period;
  return config;
}

SessionConfig Delegation() {
  SessionConfig config;
  config.model = ConsistencyModel::kDelegationCallback;
  config.cache_mode = CacheMode::kWriteBack;
  config.wb_flush_period = 0;
  return config;
}

MountOptions Noac() {
  MountOptions options;
  options.noac = true;
  return options;
}

class FailureTest : public ::testing::Test {
 protected:
  FailureTest() {
    bed_.AddWanClient();
    bed_.AddWanClient();
    bed_.EnableTracing();
  }

  // Every failure scenario doubles as a protocol-invariant check over its
  // full event history (trace_oracle.h).
  void TearDown() override { testutil::ExpectTraceClean(bed_); }

  sim::Task<void> Advance(Duration d) { co_await sim::Sleep(bed_.sched(), d); }

  HostId Host(int i) { return bed_.client_host(i); }

  Testbed bed_;
};

TEST_F(FailureTest, PartitionHealsAndOperationsRetry) {
  // Hard-mount semantics: a request issued during a partition completes once
  // the partition heals (retransmission, §4.3.2 "requests can simply be
  // retried").
  auto& session = bed_.CreateSession(Polling(Seconds(30)), {0});
  ASSERT_TRUE(bed_.fs().Create(bed_.fs().root(), "f", 0644).has_value());

  bed_.network().SetLinkUp(Host(0), bed_.server_host(), false);
  bed_.sched().At(bed_.sched().Now() + Seconds(5), [this] {
    bed_.network().SetLinkUp(Host(0), bed_.server_host(), true);
  });

  auto attr = RunTask(bed_.sched(), session.mount(0).Stat("/f"));
  ASSERT_TRUE(attr.has_value());
  EXPECT_GE(bed_.sched().Now(), Seconds(5));  // had to wait out the partition
}

TEST_F(FailureTest, PollingSurvivesPartitionWithForceInvalidate) {
  // Wrap-around during a partition (§4.2.3): when the client reconnects, the
  // server detects the overflowed buffer and forces full invalidation.
  SessionConfig config = Polling(Seconds(10));
  config.inv_buffer_capacity = 4;
  auto& session = bed_.CreateSession(config, {0, 1});
  auto& a = session.mount(0);
  auto& b = session.mount(1);

  // b caches some files and registers with the server.
  for (int i = 0; i < 3; ++i) {
    auto ino = bed_.fs().Create(bed_.fs().root(), "f" + std::to_string(i), 0644);
    ASSERT_TRUE(ino.has_value());
    (void)RunTask(bed_.sched(), b.Stat("/f" + std::to_string(i)));
  }
  (void)RunTask(bed_.sched(), Advance(Seconds(15)));

  // Partition b; meanwhile a dirties more files than b's buffer holds.
  bed_.network().SetLinkUp(Host(1), bed_.server_host(), false);
  for (int i = 0; i < 8; ++i) {
    auto fd = RunTask(bed_.sched(),
                      a.Open("/x" + std::to_string(i), kCreateWrite));
    ASSERT_TRUE(fd.has_value());
    (void)RunTask(bed_.sched(), a.Write(*fd, 0, Bytes(4, 1)));
    (void)RunTask(bed_.sched(), a.Close(*fd));
  }

  const auto forced = session.proxy(1).stats().force_invalidations;
  bed_.network().SetLinkUp(Host(1), bed_.server_host(), true);
  (void)RunTask(bed_.sched(), Advance(Seconds(25)));
  EXPECT_GT(session.proxy(1).stats().force_invalidations, forced);

  // And b still observes a consistent view afterwards.
  EXPECT_TRUE(*RunTask(bed_.sched(), b.Exists("/x7")));
}

TEST_F(FailureTest, RecallTimesOutWhenHolderPartitioned) {
  // A write-delegation holder behind a partition cannot answer the recall;
  // the server proceeds after the callback times out, so other clients are
  // not blocked forever.
  auto& session = bed_.CreateSession(Delegation(), {0, 1}, Noac());
  auto& a = session.mount(0);
  auto& b = session.mount(1);

  auto fd = RunTask(bed_.sched(), a.Open("/d", kCreateWrite));
  (void)RunTask(bed_.sched(), a.Write(*fd, 0, Bytes(16, 1)));
  (void)RunTask(bed_.sched(), a.Close(*fd));
  auto fd2 = RunTask(bed_.sched(), a.Open("/d", kWrite));
  (void)RunTask(bed_.sched(), a.Write(*fd2, 0, Bytes(16, 2)));
  (void)RunTask(bed_.sched(), a.Close(*fd2));  // absorbed: a holds dirty data

  bed_.network().SetLinkUp(Host(0), bed_.server_host(), false);

  const SimTime start = bed_.sched().Now();
  auto fd_b = RunTask(bed_.sched(), b.Open("/d", kRead));
  ASSERT_TRUE(fd_b.has_value());
  auto data = RunTask(bed_.sched(), b.Read(*fd_b, 0, 16));
  ASSERT_TRUE(data.has_value());
  // The recall timed out; b proceeds with the server's (older) copy.
  EXPECT_EQ((*data)[0], 1);
  EXPECT_GT(bed_.sched().Now() - start, Seconds(1));  // paid the recall timeout
}

TEST_F(FailureTest, ServerCrashDuringDirtyStateThenRecovery) {
  auto& session = bed_.CreateSession(Delegation(), {0, 1}, Noac());
  auto& a = session.mount(0);
  auto& b = session.mount(1);

  auto fd = RunTask(bed_.sched(), a.Open("/j", kCreateWrite));
  (void)RunTask(bed_.sched(), a.Write(*fd, 0, Bytes(32, 1)));
  (void)RunTask(bed_.sched(), a.Close(*fd));
  auto fd2 = RunTask(bed_.sched(), a.Open("/j", kWrite));
  (void)RunTask(bed_.sched(), a.Write(*fd2, 0, Bytes(32, 9)));
  (void)RunTask(bed_.sched(), a.Close(*fd2));
  ASSERT_GE(session.proxy(0).cache().FilesWithDirtyData().size(), 1u);

  // Crash + recover: the client list persisted, the recovery callback
  // rebuilds the open-file table from a's dirty report.
  session.server->Crash();
  (void)RunTask(bed_.sched(), session.server->Recover());

  auto fd_b = RunTask(bed_.sched(), b.Open("/j", kRead));
  ASSERT_TRUE(fd_b.has_value());
  auto data = RunTask(bed_.sched(), b.Read(*fd_b, 0, 32));
  ASSERT_TRUE(data.has_value());
  ASSERT_FALSE(data->empty());
  EXPECT_EQ((*data)[0], 9);  // a's delegated dirty data survived the crash
}

TEST_F(FailureTest, GracePeriodBlocksRequestsUntilRecoveryCompletes) {
  auto& session = bed_.CreateSession(Delegation(), {0, 1}, Noac());
  ASSERT_TRUE(bed_.fs().Create(bed_.fs().root(), "f", 0644).has_value());
  (void)RunTask(bed_.sched(), session.mount(0).Stat("/f"));
  (void)RunTask(bed_.sched(), session.mount(1).Stat("/f"));

  // Partition client 1 so the recovery callback to it must time out: the
  // grace period is observable.
  bed_.network().SetLinkUp(Host(1), bed_.server_host(), false);
  session.server->Crash();

  bool recovered = false;
  sim::Spawn(testutil::MarkDone(session.server->Recover(), &recovered));
  bed_.sched().Run(1);
  EXPECT_TRUE(session.server->InGrace());

  // A request issued during grace completes only after recovery finishes.
  auto attr = RunTask(bed_.sched(), session.mount(0).Stat("/f"));
  EXPECT_TRUE(attr.has_value());
  EXPECT_TRUE(recovered);
  EXPECT_FALSE(session.server->InGrace());
}

TEST_F(FailureTest, DoubleCrashClientAndServer) {
  // Both ends crash; the disk cache and the persistent client list survive,
  // and the session reassembles.
  auto& session = bed_.CreateSession(Delegation(), {0, 1}, Noac());
  auto& a = session.mount(0);

  auto fd = RunTask(bed_.sched(), a.Open("/x", kCreateWrite));
  (void)RunTask(bed_.sched(), a.Write(*fd, 0, Bytes(8, 3)));
  (void)RunTask(bed_.sched(), a.Close(*fd));
  auto fd2 = RunTask(bed_.sched(), a.Open("/x", kWrite));
  (void)RunTask(bed_.sched(), a.Write(*fd2, 0, Bytes(8, 4)));
  (void)RunTask(bed_.sched(), a.Close(*fd2));

  session.proxy(0).Crash();
  session.server->Crash();
  (void)RunTask(bed_.sched(), session.server->Recover());
  (void)RunTask(bed_.sched(), session.proxy(0).Recover());
  session.mount(0).DropCaches();

  EXPECT_TRUE(session.proxy(0).corrupted_files().empty());
  (void)RunTask(bed_.sched(), session.proxy(0).FlushAll());

  auto& b = session.mount(1);
  auto fd_b = RunTask(bed_.sched(), b.Open("/x", kRead));
  ASSERT_TRUE(fd_b.has_value());
  auto data = RunTask(bed_.sched(), b.Read(*fd_b, 0, 8));
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ((*data)[0], 4);
}

TEST_F(FailureTest, FileDroppedDuringRecoveryProbeIsNotTouched) {
  // Regression: RecoverFile captured the disk-cache entry pointer before
  // awaiting the recovery GETATTR; dropping the file during that await (as
  // a concurrent REMOVE does) left the pointer dangling for the conflict
  // check. The lookup now happens after the await.
  auto& session = bed_.CreateSession(Delegation(), {0}, Noac());
  auto& a = session.mount(0);

  auto fd = RunTask(bed_.sched(), a.Open("/r", kCreateWrite));
  ASSERT_TRUE(fd.has_value());
  (void)RunTask(bed_.sched(), a.Write(*fd, 0, Bytes(32, 7)));
  (void)RunTask(bed_.sched(), a.Close(*fd));
  auto fd2 = RunTask(bed_.sched(), a.Open("/r", kWrite));
  (void)RunTask(bed_.sched(), a.Write(*fd2, 0, Bytes(32, 9)));
  (void)RunTask(bed_.sched(), a.Close(*fd2));

  const auto dirty = session.proxy(0).cache().FilesWithDirtyData();
  ASSERT_GE(dirty.size(), 1u);
  const nfs3::Fh fh = dirty.front();

  session.proxy(0).Crash();
  bool recovered = false;
  sim::Spawn(testutil::MarkDone(session.proxy(0).Recover(), &recovered));
  // Drop the file while the recovery probe is parked on its GETATTR — half
  // the WAN round trip in.
  bed_.sched().At(bed_.sched().Now() + Milliseconds(10),
                  [this, &session, fh] {
                    session.proxy(0).cache().DropFileData(fh);
                  });
  while (!recovered && !bed_.sched().Idle()) bed_.sched().Run(1);
  ASSERT_TRUE(recovered);
  // The entry is gone; recovery must neither resurrect nor flush it.
  EXPECT_TRUE(session.proxy(0).cache().FilesWithDirtyData().empty());
}

TEST_F(FailureTest, AsymmetricLossRetriesViaDuplicateCache) {
  // Replies dropped one way: the kernel's retransmissions are absorbed by
  // the proxy chain's duplicate-request caches, so non-idempotent operations
  // (CREATE) execute exactly once.
  auto& session = bed_.CreateSession(Polling(Seconds(30)), {0});
  auto& a = session.mount(0);

  bed_.network().SetOneWayUp(bed_.server_host(), Host(0), false);
  bed_.sched().At(bed_.sched().Now() + Milliseconds(2500), [this] {
    bed_.network().SetOneWayUp(bed_.server_host(), Host(0), true);
  });

  auto fd = RunTask(bed_.sched(), a.Open("/once", kCreateWrite));
  ASSERT_TRUE(fd.has_value());
  (void)RunTask(bed_.sched(), a.Close(*fd));
  // Exactly one file, despite the retransmitted CREATEs.
  auto ino = bed_.fs().ResolvePath("/once");
  ASSERT_TRUE(ino.has_value());
  EXPECT_EQ(bed_.fs().GetAttr(*ino)->nlink, 1u);
}

TEST_F(FailureTest, PollerKeepsTryingThroughServerOutage) {
  auto& session = bed_.CreateSession(Polling(Seconds(10)), {0});
  ASSERT_TRUE(bed_.fs().Create(bed_.fs().root(), "f", 0644).has_value());
  (void)RunTask(bed_.sched(), session.mount(0).Stat("/f"));

  session.server->Crash();
  (void)RunTask(bed_.sched(), Advance(Seconds(35)));  // several failed polls
  (void)RunTask(bed_.sched(), session.server->Recover());
  (void)RunTask(bed_.sched(), Advance(Seconds(25)));

  // The poller re-bootstrapped; the mount still works.
  auto attr = RunTask(bed_.sched(), session.mount(0).Stat("/f"));
  EXPECT_TRUE(attr.has_value());
  EXPECT_GT(session.proxy(0).stats().polls, 2u);
}

}  // namespace
}  // namespace gvfs::workloads
