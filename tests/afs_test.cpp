// Tests for the AFS-style reference DFS: whole-file caching, store-on-close,
// callback promises, and lock-benchmark compatibility.
#include <gtest/gtest.h>

#include "test_util.h"
#include "workloads/lock_bench.h"
#include "workloads/testbed.h"

namespace gvfs::afs {
namespace {

using kclient::OpenFlags;
using nfs3::Status;
using testutil::RunTask;
using workloads::Testbed;

constexpr OpenFlags kRead{};
constexpr OpenFlags kWrite{.read = true, .write = true};
constexpr OpenFlags kCreateWrite{.read = true, .write = true, .create = true};

class AfsTest : public ::testing::Test {
 protected:
  AfsTest() {
    bed_.AddWanClient();
    bed_.AddWanClient();
  }

  Testbed bed_;
};

TEST_F(AfsTest, CreateWriteCloseReadBack) {
  auto& a = bed_.AfsMount(0);
  auto fd = RunTask(bed_.sched(), a.Open("/f", kCreateWrite));
  ASSERT_TRUE(fd.has_value());
  (void)RunTask(bed_.sched(), a.Write(*fd, 0, Bytes(100, 7)));
  ASSERT_TRUE(RunTask(bed_.sched(), a.Close(*fd)).has_value());

  // Store-on-close: the server has the data.
  auto ino = bed_.fs().ResolvePath("/f");
  ASSERT_TRUE(ino.has_value());
  EXPECT_EQ(bed_.fs().GetAttr(*ino)->size, 100u);

  auto& b = bed_.AfsMount(1);
  auto fd_b = RunTask(bed_.sched(), b.Open("/f", kRead));
  ASSERT_TRUE(fd_b.has_value());
  auto data = RunTask(bed_.sched(), b.Read(*fd_b, 0, 100));
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ((*data)[0], 7);
}

TEST_F(AfsTest, StatusCacheValidUntilBroken) {
  auto& a = bed_.AfsMount(0);
  ASSERT_TRUE(bed_.fs().Create(bed_.fs().root(), "f", 0644).has_value());

  (void)RunTask(bed_.sched(), a.Stat("/f"));
  const auto hits_before = a.status_cache_hits();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(RunTask(bed_.sched(), a.Stat("/f")).has_value());
  }
  EXPECT_EQ(a.status_cache_hits(), hits_before + 10);  // all local
}

TEST_F(AfsTest, MutationBreaksOtherClientsPromise) {
  auto& a = bed_.AfsMount(0);
  auto& b = bed_.AfsMount(1);

  // b caches a negative status for the lock path.
  EXPECT_FALSE(*RunTask(bed_.sched(), b.Exists("/lock")));
  EXPECT_FALSE(*RunTask(bed_.sched(), b.Exists("/lock")));

  // a creates the file: b's promise is broken, so b sees it immediately.
  auto fd = RunTask(bed_.sched(), a.Open("/lock", kCreateWrite));
  ASSERT_TRUE(fd.has_value());
  (void)RunTask(bed_.sched(), a.Close(*fd));
  EXPECT_GE(b.callback_breaks_received(), 1u);
  EXPECT_TRUE(*RunTask(bed_.sched(), b.Exists("/lock")));

  // a removes it: visible immediately again.
  ASSERT_TRUE(RunTask(bed_.sched(), a.Unlink("/lock")).has_value());
  EXPECT_FALSE(*RunTask(bed_.sched(), b.Exists("/lock")));
}

TEST_F(AfsTest, WholeFileRefetchAfterRemoteStore) {
  auto& a = bed_.AfsMount(0);
  auto& b = bed_.AfsMount(1);

  auto fd = RunTask(bed_.sched(), a.Open("/f", kCreateWrite));
  (void)RunTask(bed_.sched(), a.Write(*fd, 0, Bytes(50, 1)));
  (void)RunTask(bed_.sched(), a.Close(*fd));

  auto fd_b = RunTask(bed_.sched(), b.Open("/f", kRead));
  auto first = RunTask(bed_.sched(), b.Read(*fd_b, 0, 50));
  EXPECT_EQ((*first)[0], 1);
  (void)RunTask(bed_.sched(), b.Close(*fd_b));

  // a rewrites; b's cached copy is invalidated by the break and refetched
  // whole on the next open.
  auto fd2 = RunTask(bed_.sched(), a.Open("/f", kWrite));
  (void)RunTask(bed_.sched(), a.Write(*fd2, 0, Bytes(50, 2)));
  (void)RunTask(bed_.sched(), a.Close(*fd2));

  auto fd_b2 = RunTask(bed_.sched(), b.Open("/f", kRead));
  auto second = RunTask(bed_.sched(), b.Read(*fd_b2, 0, 50));
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ((*second)[0], 2);
}

TEST_F(AfsTest, ExclusiveCreateFailsOnExisting) {
  auto& a = bed_.AfsMount(0);
  ASSERT_TRUE(bed_.fs().Create(bed_.fs().root(), "f", 0644).has_value());
  OpenFlags excl{.read = true, .write = true, .create = true, .exclusive = true};
  auto fd = RunTask(bed_.sched(), a.Open("/f", excl));
  ASSERT_FALSE(fd.has_value());
  EXPECT_EQ(fd.error(), Status::kExist);
}

TEST_F(AfsTest, LinkVisibleToOthersImmediately) {
  auto& a = bed_.AfsMount(0);
  auto& b = bed_.AfsMount(1);
  ASSERT_TRUE(bed_.fs().Create(bed_.fs().root(), "t", 0644).has_value());

  EXPECT_FALSE(*RunTask(bed_.sched(), b.Exists("/lock")));
  ASSERT_TRUE(RunTask(bed_.sched(), a.Link("/t", "/lock")).has_value());
  EXPECT_TRUE(*RunTask(bed_.sched(), b.Exists("/lock")));
  // Duplicate link reports EEXIST.
  auto again = RunTask(bed_.sched(), b.Link("/t", "/lock"));
  ASSERT_FALSE(again.has_value());
  EXPECT_EQ(again.error(), Status::kExist);
}

TEST_F(AfsTest, ReadDirListsNames) {
  auto& a = bed_.AfsMount(0);
  ASSERT_TRUE(bed_.fs().Create(bed_.fs().root(), "x", 0644).has_value());
  ASSERT_TRUE(bed_.fs().Create(bed_.fs().root(), "y", 0644).has_value());
  auto names = RunTask(bed_.sched(), a.ReadDir("/"));
  ASSERT_TRUE(names.has_value());
  EXPECT_EQ(names->size(), 2u);
}

TEST_F(AfsTest, LockBenchIsFairOnAfs) {
  Testbed bed;
  std::vector<kclient::Vfs*> mounts;
  for (int i = 0; i < 3; ++i) {
    bed.AddWanClient();
    mounts.push_back(&bed.AfsMount(i));
  }
  workloads::LockBenchConfig config;
  config.acquisitions_per_client = 3;
  config.hold_time = Seconds(2);
  auto report =
      RunTask(bed.sched(), workloads::RunLockBench(bed.sched(), mounts, config));
  EXPECT_EQ(report.acquisition_order.size(), 9u);
  // Callback promises give strong consistency: the lock circulates fairly.
  EXPECT_LE(report.MaxConsecutiveByOneClient(), 2);
}

}  // namespace
}  // namespace gvfs::afs
