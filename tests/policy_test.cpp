// Adaptive consistency engine tests (src/policy + the MIGRATE handshake in
// src/gvfs). The unit half exercises the FSM in isolation: promotion needs
// two agreeing windows, demotion under contention, the dwell pin, and the
// recall-storm breaker (promotions freeze, demotions keep running). The
// integration half runs adaptive sessions on the testbed — single-server and
// sharded fleet — and checks that migrations actually happen, route through
// the owning shard, and leave a TraceChecker-clean history; the fault half
// proves invariant 6 (version-continuous migration) bites when the server's
// drain step is skipped.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "policy/policy.h"
#include "test_util.h"
#include "trace_oracle.h"
#include "workloads/testbed.h"

namespace gvfs::workloads {
namespace {

using kclient::OpenFlags;
using policy::AccessClass;
using policy::FileId;
using policy::FileMode;
using policy::PolicyEngine;
using proxy::ConsistencyModel;
using proxy::SessionConfig;
using testutil::RunTask;

constexpr OpenFlags kRead{.read = true};
constexpr OpenFlags kReadWrite{.read = true, .write = true};
constexpr OpenFlags kCreateWrite{.read = true, .write = true, .create = true};

// ---------------------------------------------------------------------------
// PolicyEngine unit tests (no testbed; the FSM is transport-free)
// ---------------------------------------------------------------------------

policy::PolicyConfig UnitConfig() {
  policy::PolicyConfig config;
  config.dwell = Seconds(10);
  config.promote_reads = 4;
  config.write_hot = 3;
  config.storm_recalls = 8;
  config.storm_freeze = Seconds(30);
  return config;
}

void HotReads(PolicyEngine& engine, const FileId& file, int n = 5) {
  for (int i = 0; i < n; ++i) engine.OnRead(file);
}

TEST(PolicyEngine, PromotionNeedsTwoAgreeingWindows) {
  PolicyEngine engine(UnitConfig());
  const FileId file{1, 42};

  HotReads(engine, file);
  EXPECT_EQ(engine.ClassifyOpenWindow(file), AccessClass::kReadShared);
  // First hot window only arms hysteresis: no proposal yet.
  EXPECT_TRUE(engine.Tick(Seconds(5)).empty());

  HotReads(engine, file);
  const auto migrations = engine.Tick(Seconds(10));
  ASSERT_EQ(migrations.size(), 1u);
  EXPECT_EQ(migrations[0].file, file);
  EXPECT_EQ(migrations[0].from, FileMode::kPolling);
  EXPECT_EQ(migrations[0].to, FileMode::kReadDelegation);

  engine.Commit(file, FileMode::kReadDelegation, Seconds(10));
  EXPECT_EQ(engine.ModeOf(file), FileMode::kReadDelegation);
  EXPECT_EQ(engine.promotions(), 1u);
  EXPECT_EQ(engine.demotions(), 0u);
}

TEST(PolicyEngine, OneBurstyWindowCannotFlipAFile) {
  PolicyEngine engine(UnitConfig());
  const FileId file{1, 42};

  HotReads(engine, file);
  EXPECT_TRUE(engine.Tick(Seconds(5)).empty());
  // Idle window in between: the target falls back to "hold" and hysteresis
  // disarms...
  EXPECT_TRUE(engine.Tick(Seconds(10)).empty());
  // ...so a fresh burst has to agree across two windows again.
  HotReads(engine, file);
  EXPECT_TRUE(engine.Tick(Seconds(15)).empty());
  EXPECT_EQ(engine.ModeOf(file), FileMode::kPolling);
}

TEST(PolicyEngine, ContentionDemotesAfterDwell) {
  PolicyEngine engine(UnitConfig());
  const FileId file{1, 7};
  HotReads(engine, file);
  engine.Tick(Seconds(5));
  HotReads(engine, file);
  ASSERT_EQ(engine.Tick(Seconds(10)).size(), 1u);
  engine.Commit(file, FileMode::kReadDelegation, Seconds(10));

  // Write-write sharing: we write while remote writes land as invalidations.
  auto contend = [&engine, &file] {
    engine.OnWrite(file);
    engine.OnInvalidation(file);
  };
  contend();
  EXPECT_EQ(engine.ClassifyOpenWindow(file), AccessClass::kContended);
  // Window 1 re-arms hysteresis towards polling (Commit reset it).
  EXPECT_TRUE(engine.Tick(Seconds(12)).empty());
  contend();
  // Window 2 agrees but the file migrated at t=10 and dwell is 10 s: pinned.
  EXPECT_TRUE(engine.Tick(Seconds(14)).empty());
  contend();
  const auto migrations = engine.Tick(Seconds(21));
  ASSERT_EQ(migrations.size(), 1u);
  EXPECT_EQ(migrations[0].to, FileMode::kPolling);
  engine.Commit(file, FileMode::kPolling, Seconds(21));
  EXPECT_EQ(engine.demotions(), 1u);
}

TEST(PolicyEngine, WriteDelegationGatedBySessionCacheMode) {
  // Write-back sessions: a steady single writer earns a write delegation.
  PolicyEngine wb(UnitConfig());
  const FileId file{1, 9};
  for (int i = 0; i < 4; ++i) wb.OnWrite(file);
  EXPECT_EQ(wb.ClassifyOpenWindow(file), AccessClass::kWriteHot);
  wb.Tick(Seconds(5));
  for (int i = 0; i < 4; ++i) wb.OnWrite(file);
  const auto migrations = wb.Tick(Seconds(10));
  ASSERT_EQ(migrations.size(), 1u);
  EXPECT_EQ(migrations[0].to, FileMode::kWriteDelegation);

  // Write-through sessions clear the knob: same pattern, no proposal — a
  // write grant would only add recall traffic with nothing absorbed locally.
  policy::PolicyConfig config = UnitConfig();
  config.write_delegation = false;
  PolicyEngine wt(config);
  for (int i = 0; i < 4; ++i) wt.OnWrite(file);
  wt.Tick(Seconds(5));
  for (int i = 0; i < 4; ++i) wt.OnWrite(file);
  EXPECT_TRUE(wt.Tick(Seconds(10)).empty());
}

TEST(PolicyEngine, RecallStormFreezesPromotionsNotDemotions) {
  PolicyEngine engine(UnitConfig());
  const FileId held{1, 1};    // already delegated when the storm hits
  const FileId hungry{1, 2};  // wants a promotion during the storm
  const FileId noisy{1, 3};   // the recall source

  HotReads(engine, held);
  engine.Tick(Seconds(5));
  HotReads(engine, held);
  ASSERT_EQ(engine.Tick(Seconds(10)).size(), 1u);
  engine.Commit(held, FileMode::kReadDelegation, Seconds(10));

  // 8 recalls inside one window trip the breaker (no registry attached, so
  // the breaker counts locally observed recalls).
  for (int i = 0; i < 8; ++i) engine.OnRecall(noisy);
  engine.OnWrite(held);
  engine.OnInvalidation(held);
  EXPECT_TRUE(engine.Tick(Seconds(15)).empty());
  EXPECT_TRUE(engine.frozen());
  EXPECT_EQ(engine.storm_freezes(), 1u);

  // While frozen: the demotion of `held` still goes through...
  engine.OnWrite(held);
  engine.OnInvalidation(held);
  HotReads(engine, hungry);
  auto migrations = engine.Tick(Seconds(25));
  ASSERT_EQ(migrations.size(), 1u);
  EXPECT_EQ(migrations[0].file, held);
  EXPECT_EQ(migrations[0].to, FileMode::kPolling);
  engine.Commit(held, FileMode::kPolling, Seconds(25));

  // ...but `hungry`'s promotion is suppressed for the freeze duration.
  HotReads(engine, hungry);
  EXPECT_TRUE(engine.Tick(Seconds(30)).empty());
  EXPECT_GE(engine.promotions_frozen(), 1u);

  // Freeze expires at t=45 (tripped at 15 + 30 s): promotions resume.
  HotReads(engine, hungry);
  engine.Tick(Seconds(46));
  HotReads(engine, hungry);
  migrations = engine.Tick(Seconds(51));
  ASSERT_EQ(migrations.size(), 1u);
  EXPECT_EQ(migrations[0].file, hungry);
  EXPECT_EQ(migrations[0].to, FileMode::kReadDelegation);
  EXPECT_FALSE(engine.frozen());
}

// ---------------------------------------------------------------------------
// Integration: adaptive sessions on the testbed
// ---------------------------------------------------------------------------

class PolicyTest : public ::testing::Test {
 protected:
  PolicyTest() { bed_.EnableTracing(1 << 18); }

  void TearDown() override { testutil::ExpectTraceClean(bed_); }

  static SessionConfig AdaptiveConfig() {
    SessionConfig config;
    config.model = ConsistencyModel::kInvalidationPolling;
    config.adaptive = true;
    config.poll_period = Seconds(10);
    config.poll_max_period = Seconds(10);
    config.policy_period = Seconds(5);
    config.policy_dwell = Seconds(10);
    return config;
  }

  /// Every application read must reach the proxy for the engine to see it.
  static kclient::MountOptions Observable() {
    kclient::MountOptions options;
    options.noac = true;
    options.max_cached_bytes = 0;
    return options;
  }

  sim::Task<void> Advance(Duration d) { co_await sim::Sleep(bed_.sched(), d); }

  template <typename SessionT>
  void Seed(SessionT& session, const std::string& path) {
    auto fd = RunTask(bed_.sched(), session.mount(0).Open(path, kCreateWrite));
    ASSERT_TRUE(fd.has_value());
    (void)RunTask(bed_.sched(),
                  session.mount(0).Write(*fd, 0, Bytes(64, 1)));
    (void)RunTask(bed_.sched(), session.mount(0).Close(*fd));
  }

  template <typename SessionT>
  void ReadOnce(SessionT& session, std::size_t client,
                const std::string& path) {
    auto fd = RunTask(bed_.sched(), session.mount(client).Open(path, kRead));
    ASSERT_TRUE(fd.has_value());
    (void)RunTask(bed_.sched(), session.mount(client).Read(*fd, 0, 64));
    (void)RunTask(bed_.sched(), session.mount(client).Close(*fd));
  }

  template <typename SessionT>
  void WriteOnce(SessionT& session, std::size_t client,
                 const std::string& path, std::uint8_t fill) {
    auto fd =
        RunTask(bed_.sched(), session.mount(client).Open(path, kReadWrite));
    ASSERT_TRUE(fd.has_value());
    (void)RunTask(bed_.sched(),
                  session.mount(client).Write(*fd, 0, Bytes(64, fill)));
    (void)RunTask(bed_.sched(), session.mount(client).Close(*fd));
  }

  Testbed bed_;
};

TEST_F(PolicyTest, HotReaderPromotesThenContentionDemotes) {
  bed_.AddWanClient();
  bed_.AddWanClient();
  auto& session = bed_.CreateSession(AdaptiveConfig(), {0, 1}, Observable());

  Seed(session, "/hot");
  // Phase A: client 1 reads every second for 12 s — two agreeing policy
  // windows promote /hot to a read delegation.
  for (int i = 0; i < 12; ++i) {
    ReadOnce(session, 1, "/hot");
    (void)RunTask(bed_.sched(), Advance(Seconds(1)));
  }
  EXPECT_GT(session.proxy(1).policy()->promotions(), 0u);
  EXPECT_GT(session.proxy(1).stats().migrations, 0u);
  EXPECT_GT(session.server->stats().migrations_served, 0u);

  // Phase B: both clients write the same file — write-write sharing demotes
  // it back to polling once the dwell expires.
  for (int i = 0; i < 14; ++i) {
    WriteOnce(session, 0, "/hot", 2);
    ReadOnce(session, 1, "/hot");
    WriteOnce(session, 1, "/hot", 3);
    (void)RunTask(bed_.sched(), Advance(Seconds(1)));
  }
  (void)RunTask(bed_.sched(), Advance(Seconds(12)));
  EXPECT_GT(session.proxy(1).policy()->demotions(), 0u);

  RunTask(bed_.sched(), session.Shutdown());
}

TEST_F(PolicyTest, MigrationRoutesThroughOwningShard) {
  FleetConfig config;
  config.shards = 2;
  config.aggregate = false;
  config.session = AdaptiveConfig();
  std::vector<int> clients{bed_.AddWanClient(), bed_.AddWanClient()};
  auto& session = bed_.CreateFleetSession(config, clients,
                                          /*active_mounts=*/2, Observable());

  (void)RunTask(bed_.sched(), Advance(Seconds(15)));  // fleet registered
  // Six distinct files spread across the two shards' handle slices.
  for (int f = 0; f < 6; ++f) Seed(session, "/f" + std::to_string(f));
  for (int i = 0; i < 12; ++i) {
    for (int f = 0; f < 6; ++f) {
      ReadOnce(session, 1, "/f" + std::to_string(f));
    }
    (void)RunTask(bed_.sched(), Advance(Seconds(1)));
  }

  // Every MIGRATE the client performed was served by the file's owning
  // shard; with six files both slices see traffic.
  std::uint64_t served = 0;
  for (std::size_t k = 0; k < 2; ++k) {
    served += session.shard(k).stats().migrations_served;
  }
  EXPECT_GT(served, 0u);
  EXPECT_EQ(served, session.proxy(1).stats().migrations);
  EXPECT_GT(session.proxy(1).policy()->promotions(), 0u);

  RunTask(bed_.sched(), session.Shutdown());
}

// ---------------------------------------------------------------------------
// Fault injection: invariant 6 must catch a drain-skipping server.
// (No clean-trace TearDown — violations are the expected outcome.)
// ---------------------------------------------------------------------------

class PolicyFaultTest : public ::testing::Test {
 protected:
  PolicyFaultTest() { bed_.EnableTracing(1 << 18); }

  sim::Task<void> Advance(Duration d) { co_await sim::Sleep(bed_.sched(), d); }

  /// Promotes /hot on client 1, buffers invalidations for it (client 0
  /// writes while the poll period is far too long to drain them naturally),
  /// then forces a demotion. With `skip_drain` the server switches modes
  /// without delivering the buffered entries — exactly what invariant 6
  /// (version-continuous migration) exists to catch.
  std::vector<trace::Violation> RunScenario(bool skip_drain) {
    SessionConfig config;
    config.model = proxy::ConsistencyModel::kInvalidationPolling;
    config.adaptive = true;
    config.poll_period = Seconds(300);  // polling never beats the migration
    config.poll_max_period = Seconds(300);
    config.policy_period = Seconds(5);
    config.policy_dwell = Seconds(10);
    config.unsafe_skip_drain = skip_drain;

    bed_.AddWanClient();
    bed_.AddWanClient();
    kclient::MountOptions observable;
    observable.noac = true;
    observable.max_cached_bytes = 0;
    auto& session = bed_.CreateSession(config, {0, 1}, observable);
    auto& writer = session.mount(0);
    auto& reader = session.mount(1);

    auto seed = RunTask(bed_.sched(), writer.Open("/hot", kCreateWrite));
    EXPECT_TRUE(seed.has_value());
    (void)RunTask(bed_.sched(), writer.Write(*seed, 0, Bytes(64, 1)));
    (void)RunTask(bed_.sched(), writer.Close(*seed));

    // Promote: reader hammers /hot until the engine migrates it.
    for (int i = 0; i < 12; ++i) {
      auto fd = RunTask(bed_.sched(), reader.Open("/hot", kRead));
      EXPECT_TRUE(fd.has_value());
      (void)RunTask(bed_.sched(), reader.Read(*fd, 0, 64));
      (void)RunTask(bed_.sched(), reader.Close(*fd));
      (void)RunTask(bed_.sched(), Advance(Seconds(1)));
    }

    // Contend: each round the writer mutates (appending an entry to the
    // reader's invalidation buffer and recalling its grant) and the reader
    // reads + writes (recall + local write -> contended -> demote).
    for (int i = 0; i < 14; ++i) {
      auto wfd = RunTask(bed_.sched(), writer.Open("/hot", kReadWrite));
      EXPECT_TRUE(wfd.has_value());
      (void)RunTask(bed_.sched(), writer.Write(*wfd, 0, Bytes(64, 2)));
      (void)RunTask(bed_.sched(), writer.Close(*wfd));

      auto rfd = RunTask(bed_.sched(), reader.Open("/hot", kReadWrite));
      EXPECT_TRUE(rfd.has_value());
      (void)RunTask(bed_.sched(), reader.Read(*rfd, 0, 64));
      (void)RunTask(bed_.sched(), reader.Write(*rfd, 0, Bytes(64, 3)));
      (void)RunTask(bed_.sched(), reader.Close(*rfd));
      (void)RunTask(bed_.sched(), Advance(Seconds(1)));
    }
    (void)RunTask(bed_.sched(), Advance(Seconds(12)));
    EXPECT_GT(session.proxy(1).policy()->demotions(), 0u);

    RunTask(bed_.sched(), session.Shutdown());
    EXPECT_EQ(bed_.trace_buffer()->dropped(), 0u);
    return trace::TraceChecker(proxy::NfsTraceCheckerConfig())
        .Check(*bed_.trace_buffer());
  }

  Testbed bed_;
};

TEST_F(PolicyFaultTest, DrainingMigrationIsVersionContinuous) {
  const auto violations = RunScenario(/*skip_drain=*/false);
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violation(s), first: "
      << (violations.empty() ? "" : violations[0].detail);
}

TEST_F(PolicyFaultTest, SkippedDrainIsCaught) {
  const auto violations = RunScenario(/*skip_drain=*/true);
  ASSERT_FALSE(violations.empty())
      << "the server migrated a file with buffered invalidations undelivered "
         "and the checker did not notice";
  bool mentions_migration = false;
  for (const auto& v : violations) {
    if (v.detail.find("migrat") != std::string::npos) {
      mentions_migration = true;
    }
  }
  EXPECT_TRUE(mentions_migration) << violations[0].detail;
}

}  // namespace
}  // namespace gvfs::workloads
