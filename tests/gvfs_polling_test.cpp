// End-to-end tests for the invalidation-polling consistency model (§4.2):
// GETINV protocol cases, staleness windows, batching, back-off, write-back
// caching, and soft-state failure handling.
#include <gtest/gtest.h>

#include "test_util.h"
#include "trace_oracle.h"
#include "workloads/testbed.h"

namespace gvfs::workloads {
namespace {

using kclient::OpenFlags;
using nfs3::Status;
using proxy::CacheMode;
using proxy::ConsistencyModel;
using proxy::SessionConfig;
using testutil::RunTask;

constexpr OpenFlags kRead{};
constexpr OpenFlags kCreateWrite{.read = true, .write = true, .create = true};

SessionConfig PollingConfig(Duration period = Seconds(30)) {
  SessionConfig config;
  config.model = ConsistencyModel::kInvalidationPolling;
  config.poll_period = period;
  config.poll_max_period = period;
  return config;
}

class PollingTest : public ::testing::Test {
 protected:
  PollingTest() {
    bed_.AddWanClient();
    bed_.AddWanClient();
    bed_.EnableTracing();
  }

  // Every polling scenario doubles as a protocol-invariant check over its
  // full event history (trace_oracle.h).
  void TearDown() override { testutil::ExpectTraceClean(bed_); }

  sim::Task<void> Advance(Duration d) { co_await sim::Sleep(bed_.sched(), d); }

  Testbed bed_;
};

TEST_F(PollingTest, CachedAttrsServedLocallyUntilInvalidated) {
  auto& session = bed_.CreateSession(PollingConfig(), {0});
  ASSERT_TRUE(bed_.fs().Create(bed_.fs().root(), "f", 0644).has_value());

  (void)RunTask(bed_.sched(), session.mount(0).Stat("/f"));
  const auto wan_getattrs = session.stats->Calls("GETATTR");

  // The kernel attr cache expires after 30 s, but the proxy keeps answering
  // locally: no further WAN GETATTRs even long past the TTL.
  (void)RunTask(bed_.sched(), Advance(Seconds(120)));
  (void)RunTask(bed_.sched(), session.mount(0).Stat("/f"));
  EXPECT_EQ(session.stats->Calls("GETATTR"), wan_getattrs);
  EXPECT_GT(session.proxy(0).stats().served_locally, 0u);
}

TEST_F(PollingTest, RemoteChangeVisibleAfterPoll) {
  auto& session = bed_.CreateSession(PollingConfig(Seconds(30)), {0, 1});
  kclient::MountOptions native;
  auto& a = session.mount(0);
  auto& b = session.mount(1);

  // a creates and fills the file.
  auto fd = RunTask(bed_.sched(), a.Open("/data", kCreateWrite));
  ASSERT_TRUE(fd.has_value());
  (void)RunTask(bed_.sched(), a.Write(*fd, 0, Bytes(10, 1)));
  (void)RunTask(bed_.sched(), a.Close(*fd));

  // b reads and caches it.
  auto fd_b = RunTask(bed_.sched(), b.Open("/data", kRead));
  auto first = RunTask(bed_.sched(), b.Read(*fd_b, 0, 10));
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ((*first)[0], 1);

  // a rewrites. b's kernel + proxy caches are stale within the window.
  (void)RunTask(bed_.sched(), Advance(Seconds(31)));  // kernel cache expired
  auto fd2 = RunTask(bed_.sched(), a.Open("/data", OpenFlags{.read = true, .write = true}));
  (void)RunTask(bed_.sched(), a.Write(*fd2, 0, Bytes(10, 2)));
  (void)RunTask(bed_.sched(), a.Close(*fd2));

  // Within the polling window b may still read stale data (relaxed model).
  // After at most one polling period the invalidation arrives and the next
  // access revalidates.
  (void)RunTask(bed_.sched(), Advance(Seconds(35)));
  auto second = RunTask(bed_.sched(), b.Read(*fd_b, 0, 10));
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ((*second)[0], 2);
}

TEST_F(PollingTest, OnlyModifiedFilesRevalidated) {
  auto& session = bed_.CreateSession(PollingConfig(Seconds(10)), {0, 1});
  auto& a = session.mount(0);
  auto& b = session.mount(1);

  for (int i = 0; i < 5; ++i) {
    auto ino = bed_.fs().Create(bed_.fs().root(), "f" + std::to_string(i), 0644);
    ASSERT_TRUE(ino.has_value());
  }
  // b caches all five files; a warms its own path to f2 (so the shared
  // session counter below isolates b's revalidation traffic).
  for (int i = 0; i < 5; ++i) {
    (void)RunTask(bed_.sched(), b.Stat("/f" + std::to_string(i)));
  }
  (void)RunTask(bed_.sched(), a.Stat("/f2"));
  (void)RunTask(bed_.sched(), Advance(Seconds(60)));
  const auto wan_before = session.stats->Calls("GETATTR");

  // a touches only f2 (via the session, so the proxy server sees it).
  auto fd = RunTask(bed_.sched(), a.Open("/f2", OpenFlags{.read = true, .write = true}));
  (void)RunTask(bed_.sched(), a.Write(*fd, 0, Bytes(5, 9)));
  (void)RunTask(bed_.sched(), a.Close(*fd));

  (void)RunTask(bed_.sched(), Advance(Seconds(15)));  // poll delivered
  // b stats everything: only f2 needs a WAN revalidation.
  for (int i = 0; i < 5; ++i) {
    (void)RunTask(bed_.sched(), b.Stat("/f" + std::to_string(i)));
  }
  const auto wan_after = session.stats->Calls("GETATTR");
  EXPECT_EQ(wan_after - wan_before, 1u);
}

TEST_F(PollingTest, GetInvBatchingPollAgain) {
  SessionConfig config = PollingConfig(Seconds(10));
  config.getinv_batch = 8;
  auto& session = bed_.CreateSession(config, {0, 1});
  auto& a = session.mount(0);
  auto& b = session.mount(1);

  // Warm up: b registers with the server (first poll bootstraps).
  (void)RunTask(bed_.sched(), Advance(Seconds(25)));
  const auto polls_before = session.proxy(1).stats().polls;
  (void)a;

  // a (via the session) creates 20 files: 20 dir-mtime invalidations are
  // coalesced into one, but 20 new-file handles... create unique files so
  // each CREATE invalidates the (same) root dir: coalesced to 1 entry. To
  // exercise batching we touch 20 distinct files instead.
  for (int i = 0; i < 20; ++i) {
    auto ino = bed_.fs().Create(bed_.fs().root(), "w" + std::to_string(i), 0644);
    ASSERT_TRUE(ino.has_value());
    (void)RunTask(bed_.sched(), b.Stat("/w" + std::to_string(i)));  // b caches each
  }
  // a writes all 20 files through the session.
  for (int i = 0; i < 20; ++i) {
    auto fd = RunTask(bed_.sched(),
                      a.Open("/w" + std::to_string(i), OpenFlags{.read = true, .write = true}));
    ASSERT_TRUE(fd.has_value());
    (void)RunTask(bed_.sched(), a.Write(*fd, 0, Bytes(4, 1)));
    (void)RunTask(bed_.sched(), a.Close(*fd));
  }

  (void)RunTask(bed_.sched(), Advance(Seconds(15)));
  // 20+ invalidations at batch size 8 => at least 3 GETINV calls in one
  // polling round (poll-again chaining).
  EXPECT_GE(session.proxy(1).stats().polls - polls_before, 3u);
  EXPECT_GE(session.proxy(1).stats().invalidations_applied, 20u);
}

TEST_F(PollingTest, BufferOverflowForcesFullInvalidation) {
  SessionConfig config = PollingConfig(Seconds(1000));  // effectively no polls
  config.inv_buffer_capacity = 4;
  auto& session = bed_.CreateSession(config, {0, 1});
  auto& a = session.mount(0);
  auto& b = session.mount(1);

  // Register b with a first poll cycle... the poller is slow, so trigger
  // registration by one normal call through the proxy and then wait for the
  // long first poll: instead, shorten by making b stat once (registers the
  // NFS side) — GETINV registration happens on the first poll only, so we
  // use the long way: advance past one period.
  (void)RunTask(bed_.sched(), b.Stat("/"));
  (void)RunTask(bed_.sched(), Advance(Seconds(1001)));

  // a dirties more distinct files than the buffer holds.
  for (int i = 0; i < 8; ++i) {
    auto fd = RunTask(bed_.sched(),
                      a.Open("/x" + std::to_string(i),
                             OpenFlags{.read = true, .write = true, .create = true}));
    (void)RunTask(bed_.sched(), a.Write(*fd, 0, Bytes(4, 1)));
    (void)RunTask(bed_.sched(), a.Close(*fd));
  }

  const auto forced_before = session.proxy(1).stats().force_invalidations;
  (void)RunTask(bed_.sched(), Advance(Seconds(1001)));
  EXPECT_GT(session.proxy(1).stats().force_invalidations, forced_before);
  EXPECT_GT(session.server->stats().force_invalidations, 0u);
}

TEST_F(PollingTest, ExponentialBackoffWhenQuiet) {
  SessionConfig config = PollingConfig(Seconds(10));
  config.poll_max_period = Seconds(80);
  auto& session = bed_.CreateSession(config, {0});

  (void)RunTask(bed_.sched(), Advance(Seconds(400)));
  // With back-off 10,20,40,80,80..., far fewer polls than 40.
  const auto polls = session.proxy(0).stats().polls;
  EXPECT_LT(polls, 12u);
  EXPECT_GE(polls, 5u);
}

TEST_F(PollingTest, WriteBackAbsorbsWritesAndCommits) {
  SessionConfig config = PollingConfig(Seconds(30));
  config.cache_mode = CacheMode::kWriteBack;
  config.wb_flush_period = Seconds(300);
  auto& session = bed_.CreateSession(config, {0});
  auto& a = session.mount(0);

  auto fd = RunTask(bed_.sched(), a.Open("/wb", kCreateWrite));
  ASSERT_TRUE(fd.has_value());
  (void)RunTask(bed_.sched(), a.Write(*fd, 0, Bytes(1000, 3)));
  (void)RunTask(bed_.sched(), a.Close(*fd));  // kernel flush -> proxy absorbs

  EXPECT_EQ(session.stats->Calls("WRITE"), 0u);   // nothing over the WAN
  EXPECT_EQ(session.stats->Calls("COMMIT"), 0u);  // commit absorbed too

  // Shutdown flushes dirty data to the server.
  (void)RunTask(bed_.sched(), session.Shutdown());
  EXPECT_GE(session.stats->Calls("WRITE"), 1u);
  auto ino = bed_.fs().ResolvePath("/wb");
  ASSERT_TRUE(ino.has_value());
  EXPECT_EQ(bed_.fs().GetAttr(*ino)->size, 1000u);
}

TEST_F(PollingTest, PeriodicFlusherPushesDirtyData) {
  SessionConfig config = PollingConfig(Seconds(30));
  config.cache_mode = CacheMode::kWriteBack;
  config.wb_flush_period = Seconds(60);
  auto& session = bed_.CreateSession(config, {0});
  auto& a = session.mount(0);

  auto fd = RunTask(bed_.sched(), a.Open("/wb", kCreateWrite));
  (void)RunTask(bed_.sched(), a.Write(*fd, 0, Bytes(100, 3)));
  (void)RunTask(bed_.sched(), a.Close(*fd));
  EXPECT_EQ(session.stats->Calls("WRITE"), 0u);

  (void)RunTask(bed_.sched(), Advance(Seconds(70)));
  EXPECT_GE(session.stats->Calls("WRITE"), 1u);
  auto ino = bed_.fs().ResolvePath("/wb");
  EXPECT_EQ(bed_.fs().GetAttr(*ino)->size, 100u);
}

TEST_F(PollingTest, CoalescedRepeatedWritesFlushOnce) {
  SessionConfig config = PollingConfig(Seconds(30));
  config.cache_mode = CacheMode::kWriteBack;
  config.wb_flush_period = 0;  // flush only on shutdown
  auto& session = bed_.CreateSession(config, {0});
  auto& a = session.mount(0);

  // Rewrite the same block 10 times.
  for (int i = 0; i < 10; ++i) {
    auto fd = RunTask(bed_.sched(), a.Open("/obj", kCreateWrite));
    (void)RunTask(bed_.sched(), a.Write(*fd, 0, Bytes(100, static_cast<std::uint8_t>(i))));
    (void)RunTask(bed_.sched(), a.Close(*fd));
  }
  (void)RunTask(bed_.sched(), session.Shutdown());
  // One WAN WRITE despite ten rewrites: coalescing in the disk cache.
  EXPECT_EQ(session.stats->Calls("WRITE"), 1u);
}

TEST_F(PollingTest, ServerRestartForcesClientReset) {
  auto& session = bed_.CreateSession(PollingConfig(Seconds(20)), {0});
  ASSERT_TRUE(bed_.fs().Create(bed_.fs().root(), "f", 0644).has_value());
  (void)RunTask(bed_.sched(), session.mount(0).Stat("/f"));
  (void)RunTask(bed_.sched(), Advance(Seconds(45)));  // client registered, polled

  session.server->Crash();
  (void)RunTask(bed_.sched(), Advance(Seconds(25)));  // a poll fails silently
  (void)RunTask(bed_.sched(), session.server->Recover());

  const auto forced = session.proxy(0).stats().force_invalidations;
  (void)RunTask(bed_.sched(), Advance(Seconds(45)));
  // First GETINV after restart is treated as an unknown client: bootstrap
  // with force-invalidate (§4.2.2 / §4.2.3).
  EXPECT_GT(session.proxy(0).stats().force_invalidations, forced);

  // And the session still works.
  auto attr = RunTask(bed_.sched(), session.mount(0).Stat("/f"));
  EXPECT_TRUE(attr.has_value());
}

TEST_F(PollingTest, ClientCrashLosesTimestampAndRecovers) {
  auto& session = bed_.CreateSession(PollingConfig(Seconds(20)), {0});
  ASSERT_TRUE(bed_.fs().Create(bed_.fs().root(), "f", 0644).has_value());
  (void)RunTask(bed_.sched(), session.mount(0).Stat("/f"));
  (void)RunTask(bed_.sched(), Advance(Seconds(45)));

  session.proxy(0).Crash();
  session.mount(0).DropCaches();  // the host rebooted
  (void)RunTask(bed_.sched(), session.proxy(0).Recover());

  // After recovery the proxy polls with a null timestamp and gets a
  // force-invalidation; file access works and revalidates.
  (void)RunTask(bed_.sched(), Advance(Seconds(45)));
  auto attr = RunTask(bed_.sched(), session.mount(0).Stat("/f"));
  EXPECT_TRUE(attr.has_value());
}

TEST_F(PollingTest, TwoSessionsIndependent) {
  // Two sessions over the same physical resources with different policies
  // (the Figure 1 scenario).
  auto& fast = bed_.CreateSession(PollingConfig(Seconds(5)), {0});
  auto& slow = bed_.CreateSession(PollingConfig(Seconds(300)), {1});

  (void)RunTask(bed_.sched(), Advance(Seconds(100)));
  EXPECT_GT(fast.proxy(0).stats().polls, 10u);
  EXPECT_LE(slow.proxy(0).stats().polls, 1u);
}

TEST_F(PollingTest, TtlModelBehavesLikeNativeCaching) {
  SessionConfig config;
  config.model = ConsistencyModel::kTtl;
  config.attr_ttl = Seconds(30);
  auto& session = bed_.CreateSession(config, {0});
  ASSERT_TRUE(bed_.fs().Create(bed_.fs().root(), "f", 0644).has_value());

  kclient::MountOptions noac;  // kernel caching on; proxy TTL governs
  (void)RunTask(bed_.sched(), session.mount(0).Stat("/f"));
  const auto wan = session.stats->Calls("GETATTR");
  (void)RunTask(bed_.sched(), Advance(Seconds(31)));
  // Kernel cache also expired; the proxy TTL expired too -> forwarded.
  (void)RunTask(bed_.sched(), session.mount(0).Stat("/f"));
  EXPECT_GT(session.stats->Calls("GETATTR"), wan);
}

}  // namespace
}  // namespace gvfs::workloads
