// Tests for the coroutine simulation kernel.
//
// NOTE: coroutine lambdas must not capture (the closure dies before the
// frame); every coroutine here takes its state via parameters.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/flat_map.h"
#include "sim/scheduler.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace gvfs::sim {
namespace {

TEST(SchedulerTest, EventsRunInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.At(Seconds(3), [&] { order.push_back(3); });
  sched.At(Seconds(1), [&] { order.push_back(1); });
  sched.At(Seconds(2), [&] { order.push_back(2); });
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.Now(), Seconds(3));
}

TEST(SchedulerTest, TiesAreFifo) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.At(Seconds(1), [&order, i] { order.push_back(i); });
  }
  sched.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SchedulerTest, EventsCanScheduleMoreEvents) {
  Scheduler sched;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) sched.After(Seconds(1), tick);
  };
  sched.After(Seconds(1), tick);
  sched.Run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sched.Now(), Seconds(5));
}

TEST(SchedulerTest, PastEventsClampToNow) {
  Scheduler sched;
  SimTime fired_at = -1;
  sched.At(Seconds(5), [&] {
    sched.At(Seconds(1), [&] { fired_at = sched.Now(); });  // in the past
  });
  sched.Run();
  EXPECT_EQ(fired_at, Seconds(5));
}

TEST(SchedulerTest, RunUntilAdvancesClock) {
  Scheduler sched;
  int fired = 0;
  sched.At(Seconds(1), [&] { ++fired; });
  sched.At(Seconds(10), [&] { ++fired; });
  sched.RunUntil(Seconds(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.Now(), Seconds(5));
  EXPECT_EQ(sched.PendingEvents(), 1u);
}

TEST(SchedulerTest, MaxEventsLimit) {
  Scheduler sched;
  std::function<void()> loop = [&] { sched.After(1, loop); };
  sched.After(1, loop);
  auto processed = sched.Run(100);
  EXPECT_EQ(processed, 100u);
}

Task<int> ReturnFive(bool* started) {
  *started = true;
  co_return 5;
}

Task<void> AwaitInto(Task<int> task, int* out) { *out = co_await std::move(task); }

TEST(TaskTest, LazyStart) {
  Scheduler sched;
  bool started = false;
  auto t = ReturnFive(&started);
  EXPECT_FALSE(started);  // lazy: not started until awaited
  int result = 0;
  Spawn(AwaitInto(std::move(t), &result));
  sched.Run();
  EXPECT_TRUE(started);
  EXPECT_EQ(result, 5);
}

Task<int> Leaf() { co_return 2; }
Task<int> Mid() { co_return 1 + co_await Leaf(); }
Task<int> Outer() { co_return 1 + co_await Mid(); }

TEST(TaskTest, NestedAwaitChains) {
  Scheduler sched;
  int result = 0;
  Spawn(AwaitInto(Outer(), &result));
  sched.Run();
  EXPECT_EQ(result, 4);
}

Task<void> SleepThenRecord(Scheduler* sched, Duration d, SimTime* woke) {
  co_await Sleep(*sched, d);
  *woke = sched->Now();
}

TEST(TaskTest, SleepAdvancesVirtualTime) {
  Scheduler sched;
  SimTime woke = -1;
  Spawn(SleepThenRecord(&sched, Seconds(7), &woke));
  sched.Run();
  EXPECT_EQ(woke, Seconds(7));
}

Task<void> ZeroSleep(Scheduler* sched, bool* done) {
  co_await Sleep(*sched, 0);
  *done = true;
}

TEST(TaskTest, ZeroSleepDoesNotSuspend) {
  Scheduler sched;
  bool done = false;
  Spawn(ZeroSleep(&sched, &done));
  // Spawn runs eagerly; zero-length sleep is ready immediately.
  EXPECT_TRUE(done);
}

Task<void> TickProcess(Scheduler* sched, std::string name, Duration step,
                       std::vector<std::string>* trace) {
  for (int i = 0; i < 3; ++i) {
    co_await Sleep(*sched, step);
    trace->push_back(name);
  }
}

TEST(TaskTest, InterleavedProcesses) {
  Scheduler sched;
  std::vector<std::string> trace;
  Spawn(TickProcess(&sched, "a", Seconds(2), &trace));
  Spawn(TickProcess(&sched, "b", Seconds(3), &trace));
  sched.Run();
  // a wakes at 2,4,6; b at 3,6,9. At t=6, b's wake was scheduled at t=3,
  // a's at t=4, so b resumes first (FIFO by scheduling order).
  EXPECT_EQ(trace, (std::vector<std::string>{"a", "b", "a", "b", "a", "b"}));
}

Task<int> Thrower() {
  throw std::runtime_error("bad");
  co_return 0;
}

Task<void> CatchFromThrower(bool* caught) {
  try {
    (void)co_await Thrower();
  } catch (const std::runtime_error&) {
    *caught = true;
  }
}

TEST(TaskTest, ExceptionPropagatesToAwaiter) {
  Scheduler sched;
  bool caught = false;
  Spawn(CatchFromThrower(&caught));
  sched.Run();
  EXPECT_TRUE(caught);
}

Task<void> WaitOneShot(OneShot<int>* slot, std::optional<int>* got) {
  *got = co_await slot->Wait();
}

TEST(OneShotTest, SetBeforeWait) {
  Scheduler sched;
  OneShot<int> slot(sched);
  slot.Set(42);
  std::optional<int> got;
  Spawn(WaitOneShot(&slot, &got));
  sched.Run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 42);
}

TEST(OneShotTest, SetAfterWait) {
  Scheduler sched;
  OneShot<int> slot(sched);
  std::optional<int> got;
  Spawn(WaitOneShot(&slot, &got));
  sched.At(Seconds(2), [&] { slot.Set(7); });
  sched.Run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 7);
}

Task<void> WaitOneShotUntil(Scheduler* sched, OneShot<int>* slot, SimTime deadline,
                            std::optional<int>* got, SimTime* when) {
  *got = co_await slot->WaitUntil(deadline);
  *when = sched->Now();
}

TEST(OneShotTest, TimeoutYieldsNullopt) {
  Scheduler sched;
  OneShot<int> slot(sched);
  std::optional<int> got = 99;
  SimTime when = -1;
  Spawn(WaitOneShotUntil(&sched, &slot, Seconds(5), &got, &when));
  sched.Run();
  EXPECT_FALSE(got.has_value());
  EXPECT_EQ(when, Seconds(5));
}

TEST(OneShotTest, ValueBeatsTimeout) {
  Scheduler sched;
  OneShot<int> slot(sched);
  std::optional<int> got;
  SimTime when = -1;
  Spawn(WaitOneShotUntil(&sched, &slot, Seconds(5), &got, &when));
  sched.At(Seconds(2), [&] { slot.Set(1); });
  sched.Run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 1);
  EXPECT_EQ(when, Seconds(2));
  // Set() cancels the pending timeout event: the queue drains at t=2 instead
  // of idling forward to the dead t=5 wakeup.
  EXPECT_EQ(sched.Now(), Seconds(2));
}

Task<void> ScopedOneShot(Scheduler* sched, std::optional<int>* got) {
  OneShot<int> slot(*sched);
  OneShot<int>* raw = &slot;
  sched->At(Seconds(1), [raw] { raw->Set(3); });
  *got = co_await slot.WaitUntil(Seconds(100));
  // slot destroyed here; its timeout event at t=100 must not crash.
}

TEST(OneShotTest, StaleTimeoutAfterDestructionIsSafe) {
  Scheduler sched;
  std::optional<int> got;
  Spawn(ScopedOneShot(&sched, &got));
  sched.Run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 3);
}

TEST(OneShotTest, FirstValueWins) {
  Scheduler sched;
  OneShot<int> slot(sched);
  slot.Set(1);
  slot.Set(2);
  std::optional<int> got;
  Spawn(WaitOneShot(&slot, &got));
  sched.Run();
  EXPECT_EQ(*got, 1);
}

Task<void> WaitCondition(Condition* cond, int* woke) {
  co_await cond->Wait();
  ++*woke;
}

TEST(ConditionTest, NotifyAllWakesEveryWaiter) {
  Scheduler sched;
  Condition cond(sched);
  int woke = 0;
  for (int i = 0; i < 4; ++i) Spawn(WaitCondition(&cond, &woke));
  EXPECT_EQ(cond.WaiterCount(), 4u);
  sched.At(Seconds(1), [&] { cond.NotifyAll(); });
  sched.Run();
  EXPECT_EQ(woke, 4);
}

TEST(ConditionTest, NotifyWithNoWaitersIsNoop) {
  Scheduler sched;
  Condition cond(sched);
  cond.NotifyAll();
  sched.Run();
  EXPECT_EQ(cond.WaiterCount(), 0u);
}

Task<void> CriticalSection(Scheduler* sched, Mutex* mu, int* in_critical,
                           int* max_in_critical) {
  co_await mu->Lock();
  ++*in_critical;
  *max_in_critical = std::max(*max_in_critical, *in_critical);
  co_await Sleep(*sched, Seconds(1));
  --*in_critical;
  mu->Unlock();
}

TEST(MutexTest, ProvidesMutualExclusion) {
  Scheduler sched;
  Mutex mu(sched);
  int in_critical = 0;
  int max_in_critical = 0;
  for (int i = 0; i < 5; ++i) {
    Spawn(CriticalSection(&sched, &mu, &in_critical, &max_in_critical));
  }
  sched.Run();
  EXPECT_EQ(max_in_critical, 1);
  EXPECT_EQ(sched.Now(), Seconds(5));  // fully serialized
  EXPECT_FALSE(mu.locked());
}

Task<void> LockAndRecord(Scheduler* sched, Mutex* mu, int id, std::vector<int>* order) {
  co_await mu->Lock();
  order->push_back(id);
  co_await Sleep(*sched, Seconds(1));
  mu->Unlock();
}

TEST(MutexTest, FifoOrder) {
  Scheduler sched;
  Mutex mu(sched);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) Spawn(LockAndRecord(&sched, &mu, i, &order));
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

Task<void> SleepSecondsThenCount(Scheduler* sched, int secs, int* done) {
  co_await Sleep(*sched, Seconds(secs));
  ++*done;
}

Task<void> JoinAll(Scheduler* sched, std::vector<Task<void>> tasks, bool* all_done,
                   int* done) {
  co_await WhenAll(*sched, std::move(tasks));
  *all_done = true;
  EXPECT_EQ(*done, 3);
}

TEST(WhenAllTest, WaitsForAllTasks) {
  Scheduler sched;
  std::vector<Task<void>> tasks;
  int done = 0;
  for (int i = 1; i <= 3; ++i) tasks.push_back(SleepSecondsThenCount(&sched, i, &done));
  bool all_done = false;
  Spawn(JoinAll(&sched, std::move(tasks), &all_done, &done));
  sched.Run();
  EXPECT_TRUE(all_done);
  EXPECT_EQ(sched.Now(), Seconds(3));  // parallel, not serial
}

Task<void> JoinEmpty(Scheduler* sched, bool* done) {
  co_await WhenAll(*sched, {});
  *done = true;
}

TEST(WhenAllTest, EmptyVectorCompletesImmediately) {
  Scheduler sched;
  bool done = false;
  Spawn(JoinEmpty(&sched, &done));
  sched.Run();
  EXPECT_TRUE(done);
}

// --- Scheduler order parity ------------------------------------------------
// The production scheduler is a 4-ary heap merged with a FIFO ready ring and
// a tombstoning Cancel. The reference below is the obviously-correct model:
// run the armed event with the smallest (time, seq), O(n^2) and proud of it.
// Feeding both the same deterministic workload — nested posts, bursts of
// same-timestamp events, interleaved cancels — and demanding the exact same
// execution order is the golden proof that the fast structures changed
// nothing observable.

class ReferenceScheduler {
 public:
  std::size_t At(SimTime t, std::function<void()> fn) {
    events_.push_back(Ev{t < now_ ? now_ : t, next_seq_++, true, std::move(fn)});
    return events_.size() - 1;
  }

  bool Cancel(std::size_t id) {
    if (id >= events_.size() || !events_[id].armed) return false;
    events_[id].armed = false;
    return true;
  }

  std::uint64_t RunAll() {
    std::uint64_t processed = 0;
    for (;;) {
      std::size_t best = events_.size();
      for (std::size_t i = 0; i < events_.size(); ++i) {
        const Ev& e = events_[i];
        if (!e.armed) continue;
        if (best == events_.size() || e.t < events_[best].t ||
            (e.t == events_[best].t && e.seq < events_[best].seq)) {
          best = i;
        }
      }
      if (best == events_.size()) return processed;
      events_[best].armed = false;
      now_ = events_[best].t;
      events_[best].fn();  // may append to events_
      ++processed;
    }
  }

  SimTime Now() const { return now_; }

 private:
  struct Ev {
    SimTime t;
    std::uint64_t seq;
    bool armed;
    std::function<void()> fn;
  };
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::vector<Ev> events_;
};

// Workload script derived purely from the event id, so both schedulers see
// byte-identical behaviour regardless of internal structure: each executed
// event may spawn children (often at the *same* timestamp, stressing the
// ready ring against the heap) and may cancel an earlier event (sometimes
// one already run — both sides must agree Cancel fails).
struct ParityWorkload {
  static constexpr std::uint32_t kMaxEvents = 4000;

  template <typename Sched, typename Handle>
  void RunEvent(std::uint32_t id, Sched* sched, std::vector<Handle>* handles,
                std::vector<std::uint32_t>* order,
                std::vector<bool>* cancel_results) {
    order->push_back(id);
    const std::uint64_t h = MixHash64(id);
    // 1–2 children per event: supercritical, so the workload always reaches
    // the kMaxEvents cap instead of a lineage fizzling out early.
    const std::uint32_t children = static_cast<std::uint32_t>(1 + h % 2);
    for (std::uint32_t c = 0; c < children; ++c) {
      if (next_id >= kMaxEvents) break;
      // Half the children land at the current timestamp (ready-ring path),
      // half a short hop into the future (heap path).
      const Duration delay =
          (h >> (8 + 4 * c)) % 2 == 0
              ? 0
              : static_cast<Duration>(1 + (h >> (16 + 4 * c)) % 5);
      Post(sched, handles, order, cancel_results, delay);
    }
    if (h % 7 == 0 && id > 0) {
      const std::uint32_t victim =
          id - static_cast<std::uint32_t>(1 + (h >> 32) % id);
      cancel_results->push_back(sched->Cancel((*handles)[victim]));
    }
  }

  template <typename Sched, typename Handle>
  void Post(Sched* sched, std::vector<Handle>* handles,
            std::vector<std::uint32_t>* order,
            std::vector<bool>* cancel_results, Duration delay) {
    const std::uint32_t id = next_id++;
    handles->push_back(sched->After(delay, [this, id, sched, handles, order,
                                            cancel_results] {
      RunEvent(id, sched, handles, order, cancel_results);
    }));
  }

  std::uint32_t next_id = 0;
};

// ReferenceScheduler lacks After(); adapt it to the workload's interface.
struct ReferenceAdapter {
  std::size_t After(Duration d, std::function<void()> fn) {
    return ref.At(ref.Now() + d, std::move(fn));
  }
  bool Cancel(std::size_t id) { return ref.Cancel(id); }
  ReferenceScheduler ref;
};

TEST(SchedulerParityTest, GoldenOrderMatchesReferenceModel) {
  // Seed both sides with identical bursts: clusters of events at equal
  // timestamps, posted out of order.
  std::vector<std::uint32_t> real_order, ref_order;
  std::vector<bool> real_cancels, ref_cancels;

  Scheduler sched;
  std::vector<EventId> real_handles;
  ParityWorkload real_wl;
  for (int burst = 0; burst < 8; ++burst) {
    for (int i = 0; i < 5; ++i) {
      real_wl.Post(&sched, &real_handles, &real_order, &real_cancels,
                   static_cast<Duration>((burst * 3) % 7));
    }
  }
  const std::uint64_t real_processed = sched.Run();

  ReferenceAdapter ref;
  std::vector<std::size_t> ref_handles;
  ParityWorkload ref_wl;
  for (int burst = 0; burst < 8; ++burst) {
    for (int i = 0; i < 5; ++i) {
      ref_wl.Post(&ref, &ref_handles, &ref_order, &ref_cancels,
                  static_cast<Duration>((burst * 3) % 7));
    }
  }
  const std::uint64_t ref_processed = ref.ref.RunAll();

  ASSERT_GT(real_order.size(), 100u) << "workload degenerated";
  EXPECT_EQ(real_order, ref_order);
  EXPECT_EQ(real_cancels, ref_cancels);
  EXPECT_EQ(real_processed, ref_processed);
  EXPECT_EQ(sched.Now(), ref.ref.Now());
  EXPECT_TRUE(sched.Idle());
}

TEST(SchedulerStressTest, InterleavedPostCancelAtEqualTimestamps) {
  // 100 events all at t=5; every third is cancelled before the clock moves,
  // and event 10 cancels a later same-timestamp event (40) from inside its
  // callback. Survivors must run in exact post (seq) order.
  Scheduler sched;
  std::vector<EventId> ids;
  std::vector<int> order;
  bool cancelled_40 = false;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(sched.At(Seconds(5), [&, i] {
      order.push_back(i);
      // Event 10 cancels a later event at the SAME timestamp: it must
      // vanish even though its queue node is already due.
      if (i == 10) cancelled_40 = sched.Cancel(ids[40]);
    }));
  }
  for (int i = 0; i < 100; i += 3) {
    EXPECT_TRUE(sched.Cancel(ids[static_cast<std::size_t>(i)]));
    EXPECT_FALSE(sched.Cancel(ids[static_cast<std::size_t>(i)]))
        << "double cancel must fail";
  }

  sched.Run();
  EXPECT_TRUE(cancelled_40);

  std::vector<int> expected;
  for (int i = 0; i < 100; ++i) {
    if (i % 3 != 0 && i != 40) expected.push_back(i);
  }
  EXPECT_EQ(order, expected);
  EXPECT_EQ(sched.Now(), Seconds(5));
  EXPECT_TRUE(sched.Idle());
}

TEST(SchedulerStressTest, ReadyRingGrowsWhileWrapped) {
  // Force the ready ring to grow while its head is mid-buffer and the live
  // span wraps the physical end: pop a few events first, then burst-post
  // far past the initial capacity from inside a callback.
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    sched.At(0, [&order, i] { order.push_back(i); });
  }
  sched.Run(2);  // head advances; ring storage now starts mid-buffer
  sched.At(0, [&] {
    for (int i = 100; i < 200; ++i) {
      sched.At(0, [&order, i] { order.push_back(i); });
    }
  });
  sched.Run();

  std::vector<int> expected = {0, 1, 2};
  for (int i = 100; i < 200; ++i) expected.push_back(i);
  EXPECT_EQ(order, expected);
  EXPECT_TRUE(sched.Idle());
}

}  // namespace
}  // namespace gvfs::sim
