// Tests for the coroutine simulation kernel.
//
// NOTE: coroutine lambdas must not capture (the closure dies before the
// frame); every coroutine here takes its state via parameters.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/scheduler.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace gvfs::sim {
namespace {

TEST(SchedulerTest, EventsRunInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.At(Seconds(3), [&] { order.push_back(3); });
  sched.At(Seconds(1), [&] { order.push_back(1); });
  sched.At(Seconds(2), [&] { order.push_back(2); });
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.Now(), Seconds(3));
}

TEST(SchedulerTest, TiesAreFifo) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.At(Seconds(1), [&order, i] { order.push_back(i); });
  }
  sched.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SchedulerTest, EventsCanScheduleMoreEvents) {
  Scheduler sched;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) sched.After(Seconds(1), tick);
  };
  sched.After(Seconds(1), tick);
  sched.Run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sched.Now(), Seconds(5));
}

TEST(SchedulerTest, PastEventsClampToNow) {
  Scheduler sched;
  SimTime fired_at = -1;
  sched.At(Seconds(5), [&] {
    sched.At(Seconds(1), [&] { fired_at = sched.Now(); });  // in the past
  });
  sched.Run();
  EXPECT_EQ(fired_at, Seconds(5));
}

TEST(SchedulerTest, RunUntilAdvancesClock) {
  Scheduler sched;
  int fired = 0;
  sched.At(Seconds(1), [&] { ++fired; });
  sched.At(Seconds(10), [&] { ++fired; });
  sched.RunUntil(Seconds(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.Now(), Seconds(5));
  EXPECT_EQ(sched.PendingEvents(), 1u);
}

TEST(SchedulerTest, MaxEventsLimit) {
  Scheduler sched;
  std::function<void()> loop = [&] { sched.After(1, loop); };
  sched.After(1, loop);
  auto processed = sched.Run(100);
  EXPECT_EQ(processed, 100u);
}

Task<int> ReturnFive(bool* started) {
  *started = true;
  co_return 5;
}

Task<void> AwaitInto(Task<int> task, int* out) { *out = co_await std::move(task); }

TEST(TaskTest, LazyStart) {
  Scheduler sched;
  bool started = false;
  auto t = ReturnFive(&started);
  EXPECT_FALSE(started);  // lazy: not started until awaited
  int result = 0;
  Spawn(AwaitInto(std::move(t), &result));
  sched.Run();
  EXPECT_TRUE(started);
  EXPECT_EQ(result, 5);
}

Task<int> Leaf() { co_return 2; }
Task<int> Mid() { co_return 1 + co_await Leaf(); }
Task<int> Outer() { co_return 1 + co_await Mid(); }

TEST(TaskTest, NestedAwaitChains) {
  Scheduler sched;
  int result = 0;
  Spawn(AwaitInto(Outer(), &result));
  sched.Run();
  EXPECT_EQ(result, 4);
}

Task<void> SleepThenRecord(Scheduler* sched, Duration d, SimTime* woke) {
  co_await Sleep(*sched, d);
  *woke = sched->Now();
}

TEST(TaskTest, SleepAdvancesVirtualTime) {
  Scheduler sched;
  SimTime woke = -1;
  Spawn(SleepThenRecord(&sched, Seconds(7), &woke));
  sched.Run();
  EXPECT_EQ(woke, Seconds(7));
}

Task<void> ZeroSleep(Scheduler* sched, bool* done) {
  co_await Sleep(*sched, 0);
  *done = true;
}

TEST(TaskTest, ZeroSleepDoesNotSuspend) {
  Scheduler sched;
  bool done = false;
  Spawn(ZeroSleep(&sched, &done));
  // Spawn runs eagerly; zero-length sleep is ready immediately.
  EXPECT_TRUE(done);
}

Task<void> TickProcess(Scheduler* sched, std::string name, Duration step,
                       std::vector<std::string>* trace) {
  for (int i = 0; i < 3; ++i) {
    co_await Sleep(*sched, step);
    trace->push_back(name);
  }
}

TEST(TaskTest, InterleavedProcesses) {
  Scheduler sched;
  std::vector<std::string> trace;
  Spawn(TickProcess(&sched, "a", Seconds(2), &trace));
  Spawn(TickProcess(&sched, "b", Seconds(3), &trace));
  sched.Run();
  // a wakes at 2,4,6; b at 3,6,9. At t=6, b's wake was scheduled at t=3,
  // a's at t=4, so b resumes first (FIFO by scheduling order).
  EXPECT_EQ(trace, (std::vector<std::string>{"a", "b", "a", "b", "a", "b"}));
}

Task<int> Thrower() {
  throw std::runtime_error("bad");
  co_return 0;
}

Task<void> CatchFromThrower(bool* caught) {
  try {
    (void)co_await Thrower();
  } catch (const std::runtime_error&) {
    *caught = true;
  }
}

TEST(TaskTest, ExceptionPropagatesToAwaiter) {
  Scheduler sched;
  bool caught = false;
  Spawn(CatchFromThrower(&caught));
  sched.Run();
  EXPECT_TRUE(caught);
}

Task<void> WaitOneShot(OneShot<int>* slot, std::optional<int>* got) {
  *got = co_await slot->Wait();
}

TEST(OneShotTest, SetBeforeWait) {
  Scheduler sched;
  OneShot<int> slot(sched);
  slot.Set(42);
  std::optional<int> got;
  Spawn(WaitOneShot(&slot, &got));
  sched.Run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 42);
}

TEST(OneShotTest, SetAfterWait) {
  Scheduler sched;
  OneShot<int> slot(sched);
  std::optional<int> got;
  Spawn(WaitOneShot(&slot, &got));
  sched.At(Seconds(2), [&] { slot.Set(7); });
  sched.Run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 7);
}

Task<void> WaitOneShotUntil(Scheduler* sched, OneShot<int>* slot, SimTime deadline,
                            std::optional<int>* got, SimTime* when) {
  *got = co_await slot->WaitUntil(deadline);
  *when = sched->Now();
}

TEST(OneShotTest, TimeoutYieldsNullopt) {
  Scheduler sched;
  OneShot<int> slot(sched);
  std::optional<int> got = 99;
  SimTime when = -1;
  Spawn(WaitOneShotUntil(&sched, &slot, Seconds(5), &got, &when));
  sched.Run();
  EXPECT_FALSE(got.has_value());
  EXPECT_EQ(when, Seconds(5));
}

TEST(OneShotTest, ValueBeatsTimeout) {
  Scheduler sched;
  OneShot<int> slot(sched);
  std::optional<int> got;
  SimTime when = -1;
  Spawn(WaitOneShotUntil(&sched, &slot, Seconds(5), &got, &when));
  sched.At(Seconds(2), [&] { slot.Set(1); });
  sched.Run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 1);
  EXPECT_EQ(when, Seconds(2));
  EXPECT_EQ(sched.Now(), Seconds(5));  // stale timeout event still drains
}

Task<void> ScopedOneShot(Scheduler* sched, std::optional<int>* got) {
  OneShot<int> slot(*sched);
  OneShot<int>* raw = &slot;
  sched->At(Seconds(1), [raw] { raw->Set(3); });
  *got = co_await slot.WaitUntil(Seconds(100));
  // slot destroyed here; its timeout event at t=100 must not crash.
}

TEST(OneShotTest, StaleTimeoutAfterDestructionIsSafe) {
  Scheduler sched;
  std::optional<int> got;
  Spawn(ScopedOneShot(&sched, &got));
  sched.Run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 3);
}

TEST(OneShotTest, FirstValueWins) {
  Scheduler sched;
  OneShot<int> slot(sched);
  slot.Set(1);
  slot.Set(2);
  std::optional<int> got;
  Spawn(WaitOneShot(&slot, &got));
  sched.Run();
  EXPECT_EQ(*got, 1);
}

Task<void> WaitCondition(Condition* cond, int* woke) {
  co_await cond->Wait();
  ++*woke;
}

TEST(ConditionTest, NotifyAllWakesEveryWaiter) {
  Scheduler sched;
  Condition cond(sched);
  int woke = 0;
  for (int i = 0; i < 4; ++i) Spawn(WaitCondition(&cond, &woke));
  EXPECT_EQ(cond.WaiterCount(), 4u);
  sched.At(Seconds(1), [&] { cond.NotifyAll(); });
  sched.Run();
  EXPECT_EQ(woke, 4);
}

TEST(ConditionTest, NotifyWithNoWaitersIsNoop) {
  Scheduler sched;
  Condition cond(sched);
  cond.NotifyAll();
  sched.Run();
  EXPECT_EQ(cond.WaiterCount(), 0u);
}

Task<void> CriticalSection(Scheduler* sched, Mutex* mu, int* in_critical,
                           int* max_in_critical) {
  co_await mu->Lock();
  ++*in_critical;
  *max_in_critical = std::max(*max_in_critical, *in_critical);
  co_await Sleep(*sched, Seconds(1));
  --*in_critical;
  mu->Unlock();
}

TEST(MutexTest, ProvidesMutualExclusion) {
  Scheduler sched;
  Mutex mu(sched);
  int in_critical = 0;
  int max_in_critical = 0;
  for (int i = 0; i < 5; ++i) {
    Spawn(CriticalSection(&sched, &mu, &in_critical, &max_in_critical));
  }
  sched.Run();
  EXPECT_EQ(max_in_critical, 1);
  EXPECT_EQ(sched.Now(), Seconds(5));  // fully serialized
  EXPECT_FALSE(mu.locked());
}

Task<void> LockAndRecord(Scheduler* sched, Mutex* mu, int id, std::vector<int>* order) {
  co_await mu->Lock();
  order->push_back(id);
  co_await Sleep(*sched, Seconds(1));
  mu->Unlock();
}

TEST(MutexTest, FifoOrder) {
  Scheduler sched;
  Mutex mu(sched);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) Spawn(LockAndRecord(&sched, &mu, i, &order));
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

Task<void> SleepSecondsThenCount(Scheduler* sched, int secs, int* done) {
  co_await Sleep(*sched, Seconds(secs));
  ++*done;
}

Task<void> JoinAll(Scheduler* sched, std::vector<Task<void>> tasks, bool* all_done,
                   int* done) {
  co_await WhenAll(*sched, std::move(tasks));
  *all_done = true;
  EXPECT_EQ(*done, 3);
}

TEST(WhenAllTest, WaitsForAllTasks) {
  Scheduler sched;
  std::vector<Task<void>> tasks;
  int done = 0;
  for (int i = 1; i <= 3; ++i) tasks.push_back(SleepSecondsThenCount(&sched, i, &done));
  bool all_done = false;
  Spawn(JoinAll(&sched, std::move(tasks), &all_done, &done));
  sched.Run();
  EXPECT_TRUE(all_done);
  EXPECT_EQ(sched.Now(), Seconds(3));  // parallel, not serial
}

Task<void> JoinEmpty(Scheduler* sched, bool* done) {
  co_await WhenAll(*sched, {});
  *done = true;
}

TEST(WhenAllTest, EmptyVectorCompletesImmediately) {
  Scheduler sched;
  bool done = false;
  Spawn(JoinEmpty(&sched, &done));
  sched.Run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace gvfs::sim
