#include <gtest/gtest.h>

#include "memfs/memfs.h"
#include "net/network.h"
#include "nfs3/client.h"
#include "nfs3/proto.h"
#include "nfs3/server.h"
#include "rpc/rpc.h"
#include "sim/scheduler.h"

namespace gvfs::nfs3 {
namespace {

// ---------------------------------------------------------------------------
// Codec round-trips
// ---------------------------------------------------------------------------

template <typename T>
T RoundTrip(const T& msg) {
  auto parsed = Parse<T>(Serialize(msg));
  EXPECT_TRUE(parsed.has_value());
  return *parsed;
}

TEST(Nfs3ProtoTest, FhRoundTrip) {
  Fh fh{7, 42};
  xdr::Encoder enc;
  fh.Encode(enc);
  xdr::Decoder dec(enc.bytes());
  auto back = Fh::Decode(dec);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, fh);
}

TEST(Nfs3ProtoTest, FattrRoundTrip) {
  Fattr attr;
  attr.type = FType::kDir;
  attr.mode = 0755;
  attr.nlink = 3;
  attr.size = 123456;
  attr.fileid = 99;
  attr.mtime = Seconds(55);
  xdr::Encoder enc;
  attr.Encode(enc);
  xdr::Decoder dec(enc.bytes());
  auto back = Fattr::Decode(dec);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, attr);
}

TEST(Nfs3ProtoTest, FattrDecodeRejectsEveryTruncation) {
  // Fattr decodes through one fused 60-byte window (xdr::Decoder::GetRaw);
  // every strictly-short prefix must fail kTruncated and consume nothing.
  Fattr attr;
  attr.type = FType::kReg;
  attr.mode = 0644;
  attr.size = 7;
  attr.fileid = 42;
  xdr::Encoder enc;
  attr.Encode(enc);
  const Bytes& wire = enc.bytes();
  ASSERT_EQ(wire.size(), 60u) << "Fattr wire layout changed";
  for (std::size_t len = 0; len < wire.size(); ++len) {
    xdr::Decoder dec(wire.data(), len);
    auto res = Fattr::Decode(dec);
    ASSERT_FALSE(res.has_value()) << "decoded from " << len << " bytes";
    EXPECT_EQ(res.error(), xdr::DecodeError::kTruncated);
    EXPECT_EQ(dec.pos(), 0u);
  }
}

TEST(Nfs3ProtoTest, LookupResWithError) {
  LookupRes res;
  res.status = Status::kNoEnt;
  res.dir_attr = Fattr{};
  auto back = RoundTrip(res);
  EXPECT_EQ(back.status, Status::kNoEnt);
  EXPECT_FALSE(back.obj_attr.has_value());
  EXPECT_TRUE(back.dir_attr.has_value());
}

TEST(Nfs3ProtoTest, WriteArgsCarryData) {
  WriteArgs args;
  args.file = Fh{1, 5};
  args.offset = 32768;
  args.stable = StableHow::kUnstable;
  args.data = Bytes(1000, 0xcd);
  auto back = RoundTrip(args);
  EXPECT_EQ(back.offset, 32768u);
  EXPECT_EQ(back.stable, StableHow::kUnstable);
  EXPECT_EQ(back.data, args.data);
}

TEST(Nfs3ProtoTest, ReadDirResEntries) {
  ReadDirRes res;
  res.dir_attr = Fattr{};
  res.entries = {{1, "a", 1}, {2, "b", 2}};
  res.eof = true;
  auto back = RoundTrip(res);
  ASSERT_EQ(back.entries.size(), 2u);
  EXPECT_EQ(back.entries[1].name, "b");
  EXPECT_TRUE(back.eof);
}

TEST(Nfs3ProtoTest, SetAttrArgsOptionalFields) {
  SetAttrArgs args;
  args.object = Fh{1, 2};
  args.size = 77;
  auto back = RoundTrip(args);
  EXPECT_FALSE(back.mode.has_value());
  ASSERT_TRUE(back.size.has_value());
  EXPECT_EQ(*back.size, 77u);
}

TEST(Nfs3ProtoTest, ParseRejectsTruncated) {
  GetAttrRes res;
  res.attr.size = 1;
  Bytes wire = Serialize(res);
  wire.resize(wire.size() / 2);
  EXPECT_FALSE(Parse<GetAttrRes>(wire).has_value());
}

TEST(Nfs3ProtoTest, ProcNames) {
  EXPECT_STREQ(ProcName(kGetAttr), "GETATTR");
  EXPECT_STREQ(ProcName(kLookup), "LOOKUP");
  EXPECT_STREQ(ProcName(999), "UNKNOWN");
}

// ---------------------------------------------------------------------------
// Server end-to-end over the simulated network
// ---------------------------------------------------------------------------

class Nfs3ServerTest : public ::testing::Test {
 protected:
  Nfs3ServerTest()
      : network_(sched_),
        domain_(sched_, network_),
        fs_(&clock_),
        client_host_(network_.AddHost("client")),
        server_host_(network_.AddHost("server")),
        client_node_(domain_.CreateNode(client_host_, 900, "kclient")),
        server_node_(domain_.CreateNode(server_host_, 2049, "nfsd")),
        server_(sched_, fs_, server_node_),
        client_(client_node_, server_node_.address()) {
    network_.Connect(client_host_, server_host_,
                     net::LinkConfig{Milliseconds(20), 4'000'000});
  }

  /// Runs a typed call to completion on the simulation.
  template <typename Res, typename ArgsT>
  Res Run(Proc proc, const ArgsT& args) {
    std::optional<Res> out;
    sim::Spawn(RunCall<Res>(&client_, proc, args, &out));
    sched_.Run();
    EXPECT_TRUE(out.has_value());
    return *out;
  }

  // args by const&: the referenced object (Run's parameter) outlives the
  // coroutine, which completes inside Run's sched_.Run(). Protocol structs
  // must not be coroutine by-value params (GCC 12 aggregate-param bug; see
  // rpc::CallOptions).
  template <typename Res, typename ArgsT>
  static sim::Task<void> RunCall(Nfs3Client* client, Proc proc, const ArgsT& args,
                                 std::optional<Res>* out) {
    auto r = co_await client->Call<Res>(proc, args);
    if (r.has_value()) *out = std::move(*r);
  }

  sim::Scheduler sched_;
  net::Network network_;
  rpc::Domain domain_;
  SimTime clock_ = 0;  // memfs timestamps (kept at 0; server uses sim time in prod wiring)
  memfs::MemFs fs_;
  HostId client_host_, server_host_;
  rpc::RpcNode& client_node_;
  rpc::RpcNode& server_node_;
  Nfs3Server server_;
  Nfs3Client client_;
};

TEST_F(Nfs3ServerTest, GetAttrRoot) {
  auto res = Run<GetAttrRes>(kGetAttr, GetAttrArgs{server_.RootFh()});
  EXPECT_EQ(res.status, Status::kOk);
  EXPECT_EQ(res.attr.type, FType::kDir);
  EXPECT_EQ(res.attr.fileid, fs_.root());
}

TEST_F(Nfs3ServerTest, GetAttrStale) {
  auto res = Run<GetAttrRes>(kGetAttr, GetAttrArgs{Fh{1, 9999}});
  EXPECT_EQ(res.status, Status::kStale);
}

TEST_F(Nfs3ServerTest, CreateLookupReadWrite) {
  auto create = Run<CreateRes>(kCreate, CreateArgs{server_.RootFh(), "f", 0644, false});
  ASSERT_EQ(create.status, Status::kOk);
  ASSERT_TRUE(create.obj_attr.has_value());
  ASSERT_TRUE(create.dir_attr.has_value());

  WriteArgs wargs;
  wargs.file = create.object;
  wargs.offset = 0;
  wargs.data = Bytes(64, 0xee);
  auto write = Run<WriteRes>(kWrite, wargs);
  ASSERT_EQ(write.status, Status::kOk);
  EXPECT_EQ(write.count, 64u);
  ASSERT_TRUE(write.attr.has_value());
  EXPECT_EQ(write.attr->size, 64u);

  auto lookup = Run<LookupRes>(kLookup, LookupArgs{server_.RootFh(), "f"});
  ASSERT_EQ(lookup.status, Status::kOk);
  EXPECT_EQ(lookup.object, create.object);

  auto read = Run<ReadRes>(kRead, ReadArgs{create.object, 0, 128});
  ASSERT_EQ(read.status, Status::kOk);
  EXPECT_EQ(read.data, wargs.data);
  EXPECT_TRUE(read.eof);
}

TEST_F(Nfs3ServerTest, UncheckedCreateOfExistingSucceeds) {
  auto first = Run<CreateRes>(kCreate, CreateArgs{server_.RootFh(), "f", 0644, false});
  auto second = Run<CreateRes>(kCreate, CreateArgs{server_.RootFh(), "f", 0644, false});
  EXPECT_EQ(second.status, Status::kOk);
  EXPECT_EQ(second.object, first.object);
}

TEST_F(Nfs3ServerTest, ExclusiveCreateOfExistingFails) {
  Run<CreateRes>(kCreate, CreateArgs{server_.RootFh(), "f", 0644, true});
  auto second = Run<CreateRes>(kCreate, CreateArgs{server_.RootFh(), "f", 0644, true});
  EXPECT_EQ(second.status, Status::kExist);
}

TEST_F(Nfs3ServerTest, LinkThenRemove) {
  auto create = Run<CreateRes>(kCreate, CreateArgs{server_.RootFh(), "f", 0644, false});
  auto link = Run<LinkRes>(kLink, LinkArgs{create.object, server_.RootFh(), "g"});
  ASSERT_EQ(link.status, Status::kOk);
  ASSERT_TRUE(link.file_attr.has_value());
  EXPECT_EQ(link.file_attr->nlink, 2u);

  auto link_again = Run<LinkRes>(kLink, LinkArgs{create.object, server_.RootFh(), "g"});
  EXPECT_EQ(link_again.status, Status::kExist);

  auto remove = Run<RemoveRes>(kRemove, RemoveArgs{server_.RootFh(), "f"});
  EXPECT_EQ(remove.status, Status::kOk);
  auto lookup = Run<LookupRes>(kLookup, LookupArgs{server_.RootFh(), "f"});
  EXPECT_EQ(lookup.status, Status::kNoEnt);
}

TEST_F(Nfs3ServerTest, MkdirRenameRmdir) {
  auto mk = Run<MkdirRes>(kMkdir, MkdirArgs{server_.RootFh(), "d", 0755, false});
  ASSERT_EQ(mk.status, Status::kOk);
  auto rn = Run<RenameRes>(
      kRename, RenameArgs{server_.RootFh(), "d", server_.RootFh(), "e"});
  EXPECT_EQ(rn.status, Status::kOk);
  auto rm = Run<RmdirRes>(kRmdir, RmdirArgs{server_.RootFh(), "e"});
  EXPECT_EQ(rm.status, Status::kOk);
}

TEST_F(Nfs3ServerTest, ReadDirListsEntries) {
  Run<CreateRes>(kCreate, CreateArgs{server_.RootFh(), "b", 0644, false});
  Run<CreateRes>(kCreate, CreateArgs{server_.RootFh(), "a", 0644, false});
  auto res = Run<ReadDirRes>(kReadDir, ReadDirArgs{server_.RootFh(), 0, 10});
  ASSERT_EQ(res.status, Status::kOk);
  ASSERT_EQ(res.entries.size(), 2u);
  EXPECT_EQ(res.entries[0].name, "a");
  EXPECT_TRUE(res.eof);
}

TEST_F(Nfs3ServerTest, SetAttrTruncate) {
  auto create = Run<CreateRes>(kCreate, CreateArgs{server_.RootFh(), "f", 0644, false});
  WriteArgs wargs;
  wargs.file = create.object;
  wargs.data = Bytes(100, 1);
  Run<WriteRes>(kWrite, wargs);
  SetAttrArgs sargs;
  sargs.object = create.object;
  sargs.size = 10;
  auto res = Run<SetAttrRes>(kSetAttr, sargs);
  ASSERT_EQ(res.status, Status::kOk);
  ASSERT_TRUE(res.attr.has_value());
  EXPECT_EQ(res.attr->size, 10u);
}

TEST_F(Nfs3ServerTest, FsStatReportsUsage) {
  auto create = Run<CreateRes>(kCreate, CreateArgs{server_.RootFh(), "f", 0644, false});
  WriteArgs wargs;
  wargs.file = create.object;
  wargs.data = Bytes(500, 1);
  Run<WriteRes>(kWrite, wargs);
  auto res = Run<FsStatRes>(kFsStat, FsStatArgs{server_.RootFh()});
  ASSERT_EQ(res.status, Status::kOk);
  EXPECT_EQ(res.used_bytes, 500u);
}

TEST_F(Nfs3ServerTest, CommitSucceedsOnLiveFile) {
  auto create = Run<CreateRes>(kCreate, CreateArgs{server_.RootFh(), "f", 0644, false});
  auto res = Run<CommitRes>(kCommit, CommitArgs{create.object, 0, 0});
  EXPECT_EQ(res.status, Status::kOk);
}

TEST_F(Nfs3ServerTest, AccessGrantsRequested) {
  auto res = Run<AccessRes>(kAccess, AccessArgs{server_.RootFh(), 0x3f});
  ASSERT_EQ(res.status, Status::kOk);
  EXPECT_EQ(res.access, 0x3fu);
}

TEST_F(Nfs3ServerTest, ServerCountsServedProcedures) {
  Run<GetAttrRes>(kGetAttr, GetAttrArgs{server_.RootFh()});
  Run<GetAttrRes>(kGetAttr, GetAttrArgs{server_.RootFh()});
  Run<LookupRes>(kLookup, LookupArgs{server_.RootFh(), "x"});
  EXPECT_EQ(server_.served().Calls("GETATTR"), 2u);
  EXPECT_EQ(server_.served().Calls("LOOKUP"), 1u);
}

TEST_F(Nfs3ServerTest, CallTakesAtLeastOneRtt) {
  const SimTime start = sched_.Now();
  Run<GetAttrRes>(kGetAttr, GetAttrArgs{server_.RootFh()});
  EXPECT_GE(sched_.Now() - start, Milliseconds(40));
}

TEST_F(Nfs3ServerTest, LargeReadPaysBandwidthCost) {
  auto create = Run<CreateRes>(kCreate, CreateArgs{server_.RootFh(), "f", 0644, false});
  WriteArgs wargs;
  wargs.file = create.object;
  wargs.data = Bytes(256 * 1024, 2);
  Run<WriteRes>(kWrite, wargs);

  const SimTime start = sched_.Now();
  auto read = Run<ReadRes>(kRead, ReadArgs{create.object, 0, 256 * 1024});
  ASSERT_EQ(read.status, Status::kOk);
  // 256 KB at 4 Mbps is ~0.5 s of transmission alone.
  EXPECT_GE(sched_.Now() - start, Milliseconds(500));
}

}  // namespace
}  // namespace gvfs::nfs3
