#include <gtest/gtest.h>

#include "kclient/kernel_client.h"
#include "memfs/memfs.h"
#include "net/network.h"
#include "nfs3/server.h"
#include "rpc/rpc.h"
#include "sim/scheduler.h"
#include "test_util.h"

namespace gvfs::kclient {
namespace {

using nfs3::Status;
using testutil::RunTask;

constexpr OpenFlags kRead{};
constexpr OpenFlags kWrite{.read = true, .write = true};
constexpr OpenFlags kCreateWrite{.read = true, .write = true, .create = true};

class KclientTest : public ::testing::Test {
 protected:
  KclientTest()
      : network_(sched_),
        domain_(sched_, network_),
        fs_(sched_.NowPtr()),
        server_host_(network_.AddHost("server")),
        host_a_(network_.AddHost("a")),
        host_b_(network_.AddHost("b")),
        server_node_(domain_.CreateNode(server_host_, 2049, "nfsd")),
        node_a_(domain_.CreateNode(host_a_, 900, "kclient-a")),
        node_b_(domain_.CreateNode(host_b_, 900, "kclient-b")),
        server_(sched_, fs_, server_node_) {
    network_.Connect(host_a_, server_host_, net::LinkConfig{Milliseconds(20), 4'000'000});
    network_.Connect(host_b_, server_host_, net::LinkConfig{Milliseconds(20), 4'000'000});
    node_a_.SetStatsSink(&stats_a_);
    node_b_.SetStatsSink(&stats_b_);
  }

  /// Creates a client mount for host a (index 0) or b (index 1).
  KernelClient MakeClient(int host_index, MountOptions options = {}) {
    rpc::RpcNode& node = host_index == 0 ? node_a_ : node_b_;
    return KernelClient(sched_, node, server_node_.address(), server_.RootFh(),
                        std::move(options));
  }

  sim::Scheduler sched_;
  net::Network network_;
  rpc::Domain domain_;
  memfs::MemFs fs_;
  HostId server_host_, host_a_, host_b_;
  rpc::RpcNode& server_node_;
  rpc::RpcNode& node_a_;
  rpc::RpcNode& node_b_;
  nfs3::Nfs3Server server_;
  rpc::StatsMap stats_a_;
  rpc::StatsMap stats_b_;
};

// Convenience: advance simulated time (so attribute caches can expire).
sim::Task<void> Advance(sim::Scheduler* sched, Duration d) {
  co_await sim::Sleep(*sched, d);
}

TEST_F(KclientTest, CreateWriteCloseReadBack) {
  auto client = MakeClient(0);
  auto fd = RunTask(sched_, client.Open("/f", kCreateWrite));
  ASSERT_TRUE(fd.has_value());
  Bytes payload(100, 0x42);
  auto wrote = RunTask(sched_, client.Write(*fd, 0, payload));
  ASSERT_TRUE(wrote.has_value());
  EXPECT_EQ(*wrote, 100u);
  ASSERT_TRUE(RunTask(sched_, client.Close(*fd)).has_value());

  // Server now has the data (close flushed it).
  auto ino = fs_.ResolvePath("/f");
  ASSERT_TRUE(ino.has_value());
  EXPECT_EQ(fs_.GetAttr(*ino)->size, 100u);

  auto fd2 = RunTask(sched_, client.Open("/f", kRead));
  ASSERT_TRUE(fd2.has_value());
  auto data = RunTask(sched_, client.Read(*fd2, 0, 200));
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(*data, payload);
}

TEST_F(KclientTest, WritesAreBufferedUntilClose) {
  auto client = MakeClient(0);
  auto fd = RunTask(sched_, client.Open("/f", kCreateWrite));
  ASSERT_TRUE(fd.has_value());
  (void)RunTask(sched_, client.Write(*fd, 0, Bytes(10, 1)));
  EXPECT_EQ(stats_a_.Calls("WRITE"), 0u);  // buffered
  (void)RunTask(sched_, client.Close(*fd));
  EXPECT_EQ(stats_a_.Calls("WRITE"), 1u);
  EXPECT_EQ(stats_a_.Calls("COMMIT"), 1u);
}

TEST_F(KclientTest, FsyncFlushesWithoutClose) {
  auto client = MakeClient(0);
  auto fd = RunTask(sched_, client.Open("/f", kCreateWrite));
  (void)RunTask(sched_, client.Write(*fd, 0, Bytes(10, 1)));
  (void)RunTask(sched_, client.Fsync(*fd));
  EXPECT_EQ(stats_a_.Calls("WRITE"), 1u);
  // A second close must not rewrite clean data.
  (void)RunTask(sched_, client.Close(*fd));
  EXPECT_EQ(stats_a_.Calls("WRITE"), 1u);
}

TEST_F(KclientTest, AttrCacheSuppressesRepeatGetattr) {
  auto client = MakeClient(0);
  ASSERT_TRUE(fs_.Create(fs_.root(), "f", 0644).has_value());
  (void)RunTask(sched_, client.Stat("/f"));
  const auto after_first = stats_a_.Calls("GETATTR");
  (void)RunTask(sched_, client.Stat("/f"));
  (void)RunTask(sched_, client.Stat("/f"));
  EXPECT_EQ(stats_a_.Calls("GETATTR"), after_first);  // cache hits
}

TEST_F(KclientTest, AttrCacheExpiresAfterTimeout) {
  MountOptions opts;
  opts.attr_timeout = Seconds(30);
  auto client = MakeClient(0, opts);
  ASSERT_TRUE(fs_.Create(fs_.root(), "f", 0644).has_value());
  (void)RunTask(sched_, client.Stat("/f"));
  const auto after_first = stats_a_.Calls("GETATTR");
  (void)RunTask(sched_, Advance(&sched_, Seconds(31)));
  (void)RunTask(sched_, client.Stat("/f"));
  EXPECT_GT(stats_a_.Calls("GETATTR"), after_first);
}

TEST_F(KclientTest, NoacDisablesAttrCache) {
  MountOptions opts;
  opts.noac = true;
  auto client = MakeClient(0, opts);
  ASSERT_TRUE(fs_.Create(fs_.root(), "f", 0644).has_value());
  (void)RunTask(sched_, client.Stat("/f"));
  const auto after_first = stats_a_.Calls("GETATTR");
  (void)RunTask(sched_, client.Stat("/f"));
  EXPECT_GT(stats_a_.Calls("GETATTR"), after_first);
}

TEST_F(KclientTest, DnlcAvoidsRepeatLookups) {
  auto client = MakeClient(0);
  auto d = fs_.Mkdir(fs_.root(), "dir", 0755);
  ASSERT_TRUE(fs_.Create(*d, "f", 0644).has_value());
  (void)RunTask(sched_, client.Stat("/dir/f"));
  EXPECT_EQ(stats_a_.Calls("LOOKUP"), 2u);  // dir + f
  (void)RunTask(sched_, client.Stat("/dir/f"));
  EXPECT_EQ(stats_a_.Calls("LOOKUP"), 2u);  // both from dnlc
}

TEST_F(KclientTest, OpenAlwaysRevalidates) {
  auto client = MakeClient(0);
  ASSERT_TRUE(fs_.Create(fs_.root(), "f", 0644).has_value());
  auto fd1 = RunTask(sched_, client.Open("/f", kRead));
  (void)RunTask(sched_, client.Close(*fd1));
  const auto count = stats_a_.Calls("GETATTR");
  auto fd2 = RunTask(sched_, client.Open("/f", kRead));
  (void)RunTask(sched_, client.Close(*fd2));
  // Close-to-open: the second open GETATTRs even though attrs are cached.
  EXPECT_GT(stats_a_.Calls("GETATTR"), count);
}

TEST_F(KclientTest, PageCacheServesRepeatedReads) {
  auto client = MakeClient(0);
  auto ino = fs_.Create(fs_.root(), "f", 0644);
  ASSERT_TRUE(fs_.Write(*ino, 0, Bytes(1000, 3)).has_value());
  auto fd = RunTask(sched_, client.Open("/f", kRead));
  (void)RunTask(sched_, client.Read(*fd, 0, 1000));
  EXPECT_EQ(stats_a_.Calls("READ"), 1u);
  (void)RunTask(sched_, client.Read(*fd, 0, 1000));
  (void)RunTask(sched_, client.Read(*fd, 500, 100));
  EXPECT_EQ(stats_a_.Calls("READ"), 1u);  // all cached
}

TEST_F(KclientTest, StaleDataDroppedWhenMtimeChanges) {
  auto client = MakeClient(0);
  auto ino = fs_.Create(fs_.root(), "f", 0644);
  ASSERT_TRUE(fs_.Write(*ino, 0, Bytes(100, 1)).has_value());

  auto fd = RunTask(sched_, client.Open("/f", kRead));
  auto first = RunTask(sched_, client.Read(*fd, 0, 100));
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ((*first)[0], 1);

  // Another writer updates the file server-side (with a later mtime).
  (void)RunTask(sched_, Advance(&sched_, Seconds(31)));
  ASSERT_TRUE(fs_.Write(*ino, 0, Bytes(100, 2)).has_value());

  // After the attribute cache expires, the mtime change is noticed and the
  // cached pages are discarded.
  (void)RunTask(sched_, Advance(&sched_, Seconds(31)));
  auto second = RunTask(sched_, client.Read(*fd, 0, 100));
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ((*second)[0], 2);
  EXPECT_GE(stats_a_.Calls("READ"), 2u);
}

TEST_F(KclientTest, StaleViewWithinAttrTimeout) {
  // The weak-consistency window the paper's lock benchmark exploits: another
  // client's removal stays invisible until the attribute cache expires.
  auto client = MakeClient(0);
  auto ino = fs_.Create(fs_.root(), "lock", 0644);
  (void)ino;
  auto exists1 = RunTask(sched_, client.Exists("/lock"));
  ASSERT_TRUE(exists1.has_value());
  EXPECT_TRUE(*exists1);

  ASSERT_TRUE(fs_.Remove(fs_.root(), "lock").has_value());

  auto exists2 = RunTask(sched_, client.Exists("/lock"));
  ASSERT_TRUE(exists2.has_value());
  EXPECT_TRUE(*exists2);  // stale: cached attrs + dnlc still fresh

  (void)RunTask(sched_, Advance(&sched_, Seconds(31)));
  auto exists3 = RunTask(sched_, client.Exists("/lock"));
  ASSERT_TRUE(exists3.has_value());
  EXPECT_FALSE(*exists3);  // caches expired; removal visible
}

TEST_F(KclientTest, OwnUnlinkVisibleImmediately) {
  auto client = MakeClient(0);
  ASSERT_TRUE(fs_.Create(fs_.root(), "f", 0644).has_value());
  ASSERT_TRUE(*RunTask(sched_, client.Exists("/f")));
  ASSERT_TRUE(RunTask(sched_, client.Unlink("/f")).has_value());
  EXPECT_FALSE(*RunTask(sched_, client.Exists("/f")));
}

TEST_F(KclientTest, OwnCreateKeepsSiblingDnlcEntries) {
  auto client = MakeClient(0);
  ASSERT_TRUE(fs_.Create(fs_.root(), "a", 0644).has_value());
  (void)RunTask(sched_, client.Stat("/a"));
  const auto lookups = stats_a_.Calls("LOOKUP");
  // Our own create changes the dir mtime, but must not invalidate "a".
  auto fd = RunTask(sched_, client.Open("/b", kCreateWrite));
  (void)RunTask(sched_, client.Close(*fd));
  (void)RunTask(sched_, client.Stat("/a"));
  EXPECT_EQ(stats_a_.Calls("LOOKUP"), lookups);
}

TEST_F(KclientTest, LinkReportsExist) {
  auto client = MakeClient(0);
  ASSERT_TRUE(fs_.Create(fs_.root(), "t", 0644).has_value());
  ASSERT_TRUE(fs_.Create(fs_.root(), "lock", 0644).has_value());
  auto r = RunTask(sched_, client.Link("/t", "/lock"));
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), Status::kExist);
}

TEST_F(KclientTest, LinkSucceedsAndVisible) {
  auto client = MakeClient(0);
  ASSERT_TRUE(fs_.Create(fs_.root(), "t", 0644).has_value());
  ASSERT_TRUE(RunTask(sched_, client.Link("/t", "/lock")).has_value());
  EXPECT_TRUE(*RunTask(sched_, client.Exists("/lock")));
  auto attr = RunTask(sched_, client.Stat("/t"));
  ASSERT_TRUE(attr.has_value());
  EXPECT_EQ(attr->nlink, 2u);
}

TEST_F(KclientTest, ExclusiveCreateRace) {
  auto a = MakeClient(0);
  auto b = MakeClient(1);
  OpenFlags excl{.read = true, .write = true, .create = true, .exclusive = true};
  auto fd_a = RunTask(sched_, a.Open("/lock", excl));
  ASSERT_TRUE(fd_a.has_value());
  auto fd_b = RunTask(sched_, b.Open("/lock", excl));
  ASSERT_FALSE(fd_b.has_value());
  EXPECT_EQ(fd_b.error(), Status::kExist);
}

TEST_F(KclientTest, TruncateOnOpen) {
  auto client = MakeClient(0);
  auto ino = fs_.Create(fs_.root(), "f", 0644);
  ASSERT_TRUE(fs_.Write(*ino, 0, Bytes(100, 1)).has_value());
  OpenFlags trunc{.read = true, .write = true, .truncate = true};
  auto fd = RunTask(sched_, client.Open("/f", trunc));
  ASSERT_TRUE(fd.has_value());
  EXPECT_EQ(fs_.GetAttr(*ino)->size, 0u);
  auto attr = RunTask(sched_, client.Stat("/f"));
  EXPECT_EQ(attr->size, 0u);
}

TEST_F(KclientTest, StatSeesOwnBufferedWrites) {
  auto client = MakeClient(0);
  auto fd = RunTask(sched_, client.Open("/f", kCreateWrite));
  (void)RunTask(sched_, client.Write(*fd, 0, Bytes(500, 1)));
  auto attr = RunTask(sched_, client.Stat("/f"));
  ASSERT_TRUE(attr.has_value());
  EXPECT_EQ(attr->size, 500u);  // visible before flush
}

TEST_F(KclientTest, ReadModifyWriteFetchesExistingBlock) {
  auto client = MakeClient(0);
  auto ino = fs_.Create(fs_.root(), "f", 0644);
  ASSERT_TRUE(fs_.Write(*ino, 0, Bytes(1000, 7)).has_value());
  auto fd = RunTask(sched_, client.Open("/f", kWrite));
  // Overwrite bytes [10, 20) — must preserve surrounding data.
  (void)RunTask(sched_, client.Write(*fd, 10, Bytes(10, 9)));
  (void)RunTask(sched_, client.Close(*fd));
  auto data = fs_.Read(*ino, 0, 1000);
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->data[9], 7);
  EXPECT_EQ(data->data[10], 9);
  EXPECT_EQ(data->data[19], 9);
  EXPECT_EQ(data->data[20], 7);
}

TEST_F(KclientTest, MultiBlockFileReadsInChunks) {
  auto client = MakeClient(0);
  auto ino = fs_.Create(fs_.root(), "big", 0644);
  const std::size_t size = 100 * 1024;  // 4 blocks at 32 KB
  ASSERT_TRUE(fs_.Write(*ino, 0, Bytes(size, 5)).has_value());
  auto fd = RunTask(sched_, client.Open("/big", kRead));
  auto data = RunTask(sched_, client.Read(*fd, 0, size));
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->size(), size);
  EXPECT_EQ(stats_a_.Calls("READ"), 4u);
}

TEST_F(KclientTest, EvictionRereadsAfterPressure) {
  MountOptions opts;
  opts.max_cached_bytes = 64 * 1024;  // 2 blocks
  auto client = MakeClient(0, opts);
  auto ino = fs_.Create(fs_.root(), "big", 0644);
  ASSERT_TRUE(fs_.Write(*ino, 0, Bytes(160 * 1024, 5)).has_value());
  auto fd = RunTask(sched_, client.Open("/big", kRead));
  (void)RunTask(sched_, client.Read(*fd, 0, 160 * 1024));
  const auto cold = stats_a_.Calls("READ");
  EXPECT_EQ(cold, 5u);
  (void)RunTask(sched_, client.Read(*fd, 0, 160 * 1024));
  EXPECT_GT(stats_a_.Calls("READ"), cold);  // evicted blocks re-fetched
  EXPECT_LE(client.CachedBytes(), 96 * 1024u);
}

// Regression: with a zero-byte page cache every fetched block is immediately
// evictable, and eviction used to run before the block's bytes were copied
// into the result — returning freed memory instead of file data.
TEST_F(KclientTest, ZeroByteCacheReadsReturnFileData) {
  MountOptions opts;
  opts.max_cached_bytes = 0;
  auto client = MakeClient(0, opts);
  auto ino = fs_.Create(fs_.root(), "f", 0644);
  const std::size_t size = 96 * 1024;  // 3 blocks at 32 KB
  ASSERT_TRUE(fs_.Write(*ino, 0, Bytes(size, 0x5A)).has_value());
  auto fd = RunTask(sched_, client.Open("/f", kRead));
  ASSERT_TRUE(fd.has_value());
  for (int pass = 0; pass < 2; ++pass) {
    auto data = RunTask(sched_, client.Read(*fd, 0, size));
    ASSERT_TRUE(data.has_value());
    EXPECT_EQ(*data, Bytes(size, 0x5A)) << "pass " << pass;
  }
  EXPECT_EQ(client.CachedBytes(), 0u);  // nothing may stay resident
}

sim::Task<void> UnlinkAfter(sim::Scheduler* sched, KernelClient* client,
                            std::string path, Duration d, bool* done) {
  co_await sim::Sleep(*sched, d);
  (void)co_await client->Unlink(std::move(path));
  *done = true;
}

sim::Task<void> FsyncAndDiscard(KernelClient* client, Fd fd, bool* done) {
  (void)co_await client->Fsync(fd);
  *done = true;
}

// Regression: FlushFile used to range-for over the file's block map across
// the WRITE awaits; an Unlink landing while the flush was parked dropped the
// whole cache entry out from under the live iterator.
TEST_F(KclientTest, UnlinkDuringFsyncDropsEntryCleanly) {
  auto client = MakeClient(0);
  auto fd = RunTask(sched_, client.Open("/f", kCreateWrite));
  ASSERT_TRUE(fd.has_value());
  ASSERT_TRUE(
      RunTask(sched_, client.Write(*fd, 0, Bytes(96 * 1024, 0x11))).has_value());

  bool flushed = false, unlinked = false;
  sim::Spawn(FsyncAndDiscard(&client, *fd, &flushed));
  sim::Spawn(UnlinkAfter(&sched_, &client, "/f", Milliseconds(5), &unlinked));
  while ((!flushed || !unlinked) && !sched_.Idle()) sched_.Run(1);
  EXPECT_TRUE(flushed);
  EXPECT_TRUE(unlinked);
  EXPECT_EQ(client.CachedBytes(), 0u);  // the drop reclaimed everything
}

// Regression: Read held a reference to the file's cache entry across the
// block-fetch await; an Unlink landing mid-fetch erased the map node the
// reference aliased. The assembled bytes must still come back intact.
TEST_F(KclientTest, UnlinkDuringColdReadStillReturnsData) {
  auto client = MakeClient(0);
  auto ino = fs_.Create(fs_.root(), "f", 0644);
  ASSERT_TRUE(ino.has_value());
  ASSERT_TRUE(fs_.Write(*ino, 0, Bytes(64 * 1024, 0x07)).has_value());
  auto fd = RunTask(sched_, client.Open("/f", kRead));
  ASSERT_TRUE(fd.has_value());
  // Warm block 0 and the attribute cache so the big read suspends only on
  // block 1's fetch — after the cache-entry reference exists.
  ASSERT_TRUE(RunTask(sched_, client.Read(*fd, 0, 1024)).has_value());

  std::optional<VfsResult<Bytes>> out;
  bool unlinked = false;
  sim::Spawn(testutil::CaptureInto(client.Read(*fd, 0, 64 * 1024), &out));
  sim::Spawn(UnlinkAfter(&sched_, &client, "/f", Milliseconds(5), &unlinked));
  while ((!out.has_value() || !unlinked) && !sched_.Idle()) sched_.Run(1);
  ASSERT_TRUE(out.has_value());
  ASSERT_TRUE(out->has_value());
  EXPECT_EQ(**out, Bytes(64 * 1024, 0x07));
}

// Regression: Write held the same entry reference across its
// read-modify-write fetch; an Unlink landing mid-fetch dangled it.
TEST_F(KclientTest, UnlinkDuringReadModifyWriteCompletes) {
  auto client = MakeClient(0);
  auto ino = fs_.Create(fs_.root(), "f", 0644);
  ASSERT_TRUE(fs_.Write(*ino, 0, Bytes(64 * 1024, 0x07)).has_value());
  auto fd = RunTask(sched_, client.Open("/f", kWrite));
  ASSERT_TRUE(fd.has_value());
  // Warm the attribute cache so the write's only suspend is the RMW fetch.
  ASSERT_TRUE(RunTask(sched_, client.Stat("/f")).has_value());

  // A partial overwrite of existing server data forces the RMW fetch. The
  // payload must outlive the spawned frame — Write takes it by reference.
  const Bytes payload(10, 0x22);
  std::optional<VfsResult<std::uint32_t>> out;
  bool unlinked = false;
  sim::Spawn(testutil::CaptureInto(client.Write(*fd, 100, payload), &out));
  sim::Spawn(UnlinkAfter(&sched_, &client, "/f", Milliseconds(5), &unlinked));
  while ((!out.has_value() || !unlinked) && !sched_.Idle()) sched_.Run(1);
  ASSERT_TRUE(out.has_value());
  ASSERT_TRUE(out->has_value());
  EXPECT_EQ(**out, 10u);
}

TEST_F(KclientTest, MkdirRmdirReadDir) {
  auto client = MakeClient(0);
  ASSERT_TRUE(RunTask(sched_, client.Mkdir("/d")).has_value());
  auto fd = RunTask(sched_, client.Open("/d/x", kCreateWrite));
  (void)RunTask(sched_, client.Close(*fd));
  auto names = RunTask(sched_, client.ReadDir("/d"));
  ASSERT_TRUE(names.has_value());
  ASSERT_EQ(names->size(), 1u);
  EXPECT_EQ((*names)[0], "x");
  ASSERT_TRUE(RunTask(sched_, client.Unlink("/d/x")).has_value());
  ASSERT_TRUE(RunTask(sched_, client.Rmdir("/d")).has_value());
  EXPECT_FALSE(*RunTask(sched_, client.Exists("/d")));
}

TEST_F(KclientTest, RenameUpdatesNamespace) {
  auto client = MakeClient(0);
  ASSERT_TRUE(fs_.Create(fs_.root(), "old", 0644).has_value());
  ASSERT_TRUE(RunTask(sched_, client.Rename("/old", "/new")).has_value());
  EXPECT_FALSE(*RunTask(sched_, client.Exists("/old")));
  EXPECT_TRUE(*RunTask(sched_, client.Exists("/new")));
}

TEST_F(KclientTest, DropCachesForcesRefetch) {
  auto client = MakeClient(0);
  auto ino = fs_.Create(fs_.root(), "f", 0644);
  ASSERT_TRUE(fs_.Write(*ino, 0, Bytes(100, 1)).has_value());
  auto fd = RunTask(sched_, client.Open("/f", kRead));
  (void)RunTask(sched_, client.Read(*fd, 0, 100));
  const auto reads = stats_a_.Calls("READ");
  const auto lookups = stats_a_.Calls("LOOKUP");
  client.DropCaches();
  auto fd2 = RunTask(sched_, client.Open("/f", kRead));
  (void)RunTask(sched_, client.Read(*fd2, 0, 100));
  EXPECT_GT(stats_a_.Calls("READ"), reads);
  EXPECT_GT(stats_a_.Calls("LOOKUP"), lookups);
}

TEST_F(KclientTest, MissingFileReportsNoEnt) {
  auto client = MakeClient(0);
  auto r = RunTask(sched_, client.Open("/missing", kRead));
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), Status::kNoEnt);
}

TEST_F(KclientTest, ReadAcrossEofClamps) {
  auto client = MakeClient(0);
  auto ino = fs_.Create(fs_.root(), "f", 0644);
  ASSERT_TRUE(fs_.Write(*ino, 0, Bytes(10, 1)).has_value());
  auto fd = RunTask(sched_, client.Open("/f", kRead));
  auto data = RunTask(sched_, client.Read(*fd, 5, 100));
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->size(), 5u);
  auto past = RunTask(sched_, client.Read(*fd, 100, 10));
  ASSERT_TRUE(past.has_value());
  EXPECT_TRUE(past->empty());
}

}  // namespace
}  // namespace gvfs::kclient
