#include <gtest/gtest.h>

#include "memfs/memfs.h"

namespace gvfs::memfs {
namespace {

class MemFsTest : public ::testing::Test {
 protected:
  MemFsTest() : fs_(&now_) {}

  void Tick() { now_ += Seconds(1); }

  InodeId MustCreate(InodeId dir, const std::string& name) {
    auto r = fs_.Create(dir, name, 0644);
    EXPECT_TRUE(r.has_value());
    return *r;
  }

  InodeId MustMkdir(InodeId dir, const std::string& name) {
    auto r = fs_.Mkdir(dir, name, 0755);
    EXPECT_TRUE(r.has_value());
    return *r;
  }

  SimTime now_ = Seconds(100);
  MemFs fs_;
};

TEST_F(MemFsTest, RootIsDirectory) {
  auto attr = fs_.GetAttr(fs_.root());
  ASSERT_TRUE(attr.has_value());
  EXPECT_EQ(attr->type, FileType::kDirectory);
  EXPECT_EQ(attr->nlink, 2u);
}

TEST_F(MemFsTest, CreateAndLookup) {
  InodeId f = MustCreate(fs_.root(), "hello.txt");
  auto found = fs_.Lookup(fs_.root(), "hello.txt");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, f);
  auto attr = fs_.GetAttr(f);
  ASSERT_TRUE(attr.has_value());
  EXPECT_EQ(attr->type, FileType::kRegular);
  EXPECT_EQ(attr->size, 0u);
  EXPECT_EQ(attr->nlink, 1u);
}

TEST_F(MemFsTest, CreateDuplicateFails) {
  MustCreate(fs_.root(), "x");
  auto r = fs_.Create(fs_.root(), "x", 0644);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), FsError::kExist);
}

TEST_F(MemFsTest, CreateRejectsBadNames) {
  EXPECT_EQ(fs_.Create(fs_.root(), "", 0644).error(), FsError::kInval);
  EXPECT_EQ(fs_.Create(fs_.root(), ".", 0644).error(), FsError::kInval);
  EXPECT_EQ(fs_.Create(fs_.root(), "..", 0644).error(), FsError::kInval);
}

TEST_F(MemFsTest, LookupMissingIsNoEnt) {
  auto r = fs_.Lookup(fs_.root(), "ghost");
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), FsError::kNoEnt);
}

TEST_F(MemFsTest, LookupOnFileIsNotDir) {
  InodeId f = MustCreate(fs_.root(), "f");
  auto r = fs_.Lookup(f, "x");
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), FsError::kNotDir);
}

TEST_F(MemFsTest, CreateTouchesDirMtime) {
  auto before = fs_.GetAttr(fs_.root())->mtime;
  Tick();
  MustCreate(fs_.root(), "a");
  auto after = fs_.GetAttr(fs_.root())->mtime;
  EXPECT_GT(after, before);
}

TEST_F(MemFsTest, WriteExtendsAndReads) {
  InodeId f = MustCreate(fs_.root(), "data");
  Bytes payload = {1, 2, 3, 4, 5};
  auto size = fs_.Write(f, 0, payload);
  ASSERT_TRUE(size.has_value());
  EXPECT_EQ(*size, 5u);

  auto read = fs_.Read(f, 0, 100);
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->data, payload);
  EXPECT_TRUE(read->eof);
}

TEST_F(MemFsTest, WriteAtOffsetZeroFills) {
  InodeId f = MustCreate(fs_.root(), "sparse");
  ASSERT_TRUE(fs_.Write(f, 10, Bytes{9}).has_value());
  auto read = fs_.Read(f, 0, 11);
  ASSERT_TRUE(read.has_value());
  ASSERT_EQ(read->data.size(), 11u);
  EXPECT_EQ(read->data[0], 0);
  EXPECT_EQ(read->data[10], 9);
}

TEST_F(MemFsTest, PartialReadNotEof) {
  InodeId f = MustCreate(fs_.root(), "big");
  ASSERT_TRUE(fs_.Write(f, 0, Bytes(100, 7)).has_value());
  auto read = fs_.Read(f, 0, 50);
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->data.size(), 50u);
  EXPECT_FALSE(read->eof);
  auto tail = fs_.Read(f, 50, 50);
  ASSERT_TRUE(tail.has_value());
  EXPECT_TRUE(tail->eof);
}

TEST_F(MemFsTest, ReadPastEofReturnsEmptyEof) {
  InodeId f = MustCreate(fs_.root(), "f");
  auto read = fs_.Read(f, 100, 10);
  ASSERT_TRUE(read.has_value());
  EXPECT_TRUE(read->data.empty());
  EXPECT_TRUE(read->eof);
}

TEST_F(MemFsTest, WriteUpdatesMtime) {
  InodeId f = MustCreate(fs_.root(), "f");
  auto before = fs_.GetAttr(f)->mtime;
  Tick();
  ASSERT_TRUE(fs_.Write(f, 0, Bytes{1}).has_value());
  EXPECT_GT(fs_.GetAttr(f)->mtime, before);
}

TEST_F(MemFsTest, HardLinkSharesInode) {
  InodeId f = MustCreate(fs_.root(), "orig");
  ASSERT_TRUE(fs_.Write(f, 0, Bytes{1, 2}).has_value());
  ASSERT_TRUE(fs_.Link(f, fs_.root(), "alias").has_value());
  EXPECT_EQ(fs_.GetAttr(f)->nlink, 2u);
  auto via_alias = fs_.Lookup(fs_.root(), "alias");
  ASSERT_TRUE(via_alias.has_value());
  EXPECT_EQ(*via_alias, f);
}

TEST_F(MemFsTest, LinkToExistingNameFails) {
  InodeId f = MustCreate(fs_.root(), "a");
  MustCreate(fs_.root(), "b");
  auto r = fs_.Link(f, fs_.root(), "b");
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), FsError::kExist);
}

TEST_F(MemFsTest, LinkDirectoryFails) {
  InodeId d = MustMkdir(fs_.root(), "d");
  auto r = fs_.Link(d, fs_.root(), "dlink");
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), FsError::kIsDir);
}

TEST_F(MemFsTest, RemoveLastLinkFreesData) {
  InodeId f = MustCreate(fs_.root(), "f");
  ASSERT_TRUE(fs_.Write(f, 0, Bytes(1000, 1)).has_value());
  EXPECT_EQ(fs_.TotalBytes(), 1000u);
  ASSERT_TRUE(fs_.Remove(fs_.root(), "f").has_value());
  EXPECT_EQ(fs_.TotalBytes(), 0u);
  EXPECT_EQ(fs_.GetAttr(f).error(), FsError::kStale);
}

TEST_F(MemFsTest, RemoveOneOfTwoLinksKeepsData) {
  InodeId f = MustCreate(fs_.root(), "f");
  ASSERT_TRUE(fs_.Link(f, fs_.root(), "g").has_value());
  ASSERT_TRUE(fs_.Remove(fs_.root(), "f").has_value());
  EXPECT_EQ(fs_.GetAttr(f)->nlink, 1u);
  EXPECT_TRUE(fs_.Lookup(fs_.root(), "g").has_value());
}

TEST_F(MemFsTest, RemoveDirectoryWithRemoveFails) {
  MustMkdir(fs_.root(), "d");
  auto r = fs_.Remove(fs_.root(), "d");
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), FsError::kIsDir);
}

TEST_F(MemFsTest, MkdirBumpsParentNlink) {
  EXPECT_EQ(fs_.GetAttr(fs_.root())->nlink, 2u);
  MustMkdir(fs_.root(), "d");
  EXPECT_EQ(fs_.GetAttr(fs_.root())->nlink, 3u);
}

TEST_F(MemFsTest, RmdirRequiresEmpty) {
  InodeId d = MustMkdir(fs_.root(), "d");
  MustCreate(d, "child");
  auto r = fs_.Rmdir(fs_.root(), "d");
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), FsError::kNotEmpty);
  ASSERT_TRUE(fs_.Remove(d, "child").has_value());
  ASSERT_TRUE(fs_.Rmdir(fs_.root(), "d").has_value());
  EXPECT_EQ(fs_.GetAttr(fs_.root())->nlink, 2u);
  EXPECT_EQ(fs_.GetAttr(d).error(), FsError::kStale);
}

TEST_F(MemFsTest, RenameMovesEntry) {
  InodeId d1 = MustMkdir(fs_.root(), "d1");
  InodeId d2 = MustMkdir(fs_.root(), "d2");
  InodeId f = MustCreate(d1, "f");
  ASSERT_TRUE(fs_.Rename(d1, "f", d2, "g").has_value());
  EXPECT_EQ(fs_.Lookup(d1, "f").error(), FsError::kNoEnt);
  auto found = fs_.Lookup(d2, "g");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, f);
}

TEST_F(MemFsTest, RenameReplacesExistingFile) {
  InodeId a = MustCreate(fs_.root(), "a");
  InodeId b = MustCreate(fs_.root(), "b");
  ASSERT_TRUE(fs_.Rename(fs_.root(), "a", fs_.root(), "b").has_value());
  auto found = fs_.Lookup(fs_.root(), "b");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, a);
  EXPECT_EQ(fs_.GetAttr(b).error(), FsError::kStale);  // replaced file freed
}

TEST_F(MemFsTest, RenameDirectoryAcrossDirsFixesNlink) {
  InodeId d1 = MustMkdir(fs_.root(), "d1");
  InodeId d2 = MustMkdir(fs_.root(), "d2");
  MustMkdir(d1, "sub");
  EXPECT_EQ(fs_.GetAttr(d1)->nlink, 3u);
  ASSERT_TRUE(fs_.Rename(d1, "sub", d2, "sub").has_value());
  EXPECT_EQ(fs_.GetAttr(d1)->nlink, 2u);
  EXPECT_EQ(fs_.GetAttr(d2)->nlink, 3u);
}

TEST_F(MemFsTest, SetAttrTruncates) {
  InodeId f = MustCreate(fs_.root(), "f");
  ASSERT_TRUE(fs_.Write(f, 0, Bytes(100, 1)).has_value());
  SetAttrRequest req;
  req.size = 10;
  auto attr = fs_.SetAttr(f, req);
  ASSERT_TRUE(attr.has_value());
  EXPECT_EQ(attr->size, 10u);
  EXPECT_EQ(fs_.TotalBytes(), 10u);
}

TEST_F(MemFsTest, SetAttrExtendsWithZeros) {
  InodeId f = MustCreate(fs_.root(), "f");
  SetAttrRequest req;
  req.size = 5;
  ASSERT_TRUE(fs_.SetAttr(f, req).has_value());
  auto read = fs_.Read(f, 0, 5);
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->data, Bytes(5, 0));
}

TEST_F(MemFsTest, ReadDirPagination) {
  for (int i = 0; i < 10; ++i) {
    MustCreate(fs_.root(), "f" + std::to_string(i));
  }
  auto page1 = fs_.ReadDir(fs_.root(), 0, 4);
  ASSERT_TRUE(page1.has_value());
  ASSERT_EQ(page1->size(), 4u);
  auto page2 = fs_.ReadDir(fs_.root(), page1->back().cookie, 100);
  ASSERT_TRUE(page2.has_value());
  EXPECT_EQ(page2->size(), 6u);
  // No overlap, no gap.
  EXPECT_EQ(page1->back().name, "f3");
  EXPECT_EQ(page2->front().name, "f4");
}

TEST_F(MemFsTest, ReadDirDeterministicOrder) {
  MustCreate(fs_.root(), "zeta");
  MustCreate(fs_.root(), "alpha");
  auto listing = fs_.ReadDir(fs_.root(), 0, 10);
  ASSERT_TRUE(listing.has_value());
  EXPECT_EQ(listing->at(0).name, "alpha");
  EXPECT_EQ(listing->at(1).name, "zeta");
}

TEST_F(MemFsTest, ResolvePathWalksComponents) {
  InodeId d1 = MustMkdir(fs_.root(), "usr");
  InodeId d2 = MustMkdir(d1, "share");
  InodeId f = MustCreate(d2, "readme");
  auto r = fs_.ResolvePath("/usr/share/readme");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, f);
  EXPECT_EQ(*fs_.ResolvePath("/"), fs_.root());
  EXPECT_EQ(fs_.ResolvePath("/usr/missing").error(), FsError::kNoEnt);
}

TEST_F(MemFsTest, StaleInodeAfterDelete) {
  InodeId f = MustCreate(fs_.root(), "f");
  ASSERT_TRUE(fs_.Remove(fs_.root(), "f").has_value());
  EXPECT_EQ(fs_.Read(f, 0, 10).error(), FsError::kStale);
  EXPECT_EQ(fs_.Write(f, 0, Bytes{1}).error(), FsError::kStale);
  // Inode numbers are never reused: a recreated name gets a fresh id.
  InodeId g = MustCreate(fs_.root(), "f");
  EXPECT_NE(f, g);
}

TEST_F(MemFsTest, InodeCountTracksLiveInodes) {
  const auto base = fs_.InodeCount();
  InodeId f = MustCreate(fs_.root(), "f");
  (void)f;
  EXPECT_EQ(fs_.InodeCount(), base + 1);
  ASSERT_TRUE(fs_.Remove(fs_.root(), "f").has_value());
  EXPECT_EQ(fs_.InodeCount(), base);
}

// Property sweep: a write at any offset/length yields size = max(old_end,
// offset+len) and the data reads back.
class WriteSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(WriteSweep, SizeInvariant) {
  SimTime now = 0;
  MemFs fs(&now);
  auto f = fs.Create(fs.root(), "f", 0644);
  ASSERT_TRUE(f.has_value());
  const auto [offset, len] = GetParam();
  Bytes data(static_cast<std::size_t>(len), 0x5a);
  auto size = fs.Write(*f, static_cast<std::uint64_t>(offset), data);
  ASSERT_TRUE(size.has_value());
  EXPECT_EQ(*size, static_cast<std::uint64_t>(offset + len));
  auto read = fs.Read(*f, static_cast<std::uint64_t>(offset),
                      static_cast<std::uint32_t>(len));
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->data, data);
}

INSTANTIATE_TEST_SUITE_P(
    OffsetsAndLengths, WriteSweep,
    ::testing::Values(std::pair{0, 1}, std::pair{0, 32768}, std::pair{100, 1},
                      std::pair{32768, 32768}, std::pair{1, 3},
                      std::pair{65535, 2}));

}  // namespace
}  // namespace gvfs::memfs
