#include <gtest/gtest.h>

#include <vector>

#include "net/network.h"
#include "sim/scheduler.h"

namespace gvfs::net {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : network_(sched_) {
    a_ = network_.AddHost("a");
    b_ = network_.AddHost("b");
    network_.Connect(a_, b_, LinkConfig{Milliseconds(20), 4'000'000});
  }

  Packet MakePacket(HostId from, HostId to, std::size_t size) {
    Packet p;
    p.src = {from, 1};
    p.dst = {to, 1};
    p.wire_size = size;
    return p;
  }

  sim::Scheduler sched_;
  Network network_;
  HostId a_ = 0, b_ = 0;
};

TEST_F(NetworkTest, DeliversAfterLatencyPlusTransmission) {
  std::vector<SimTime> arrivals;
  network_.SetReceiver(b_, [&](Packet) { arrivals.push_back(sched_.Now()); });

  // 500 bytes at 4 Mbps = 1 ms transmission + 20 ms latency.
  network_.Send(MakePacket(a_, b_, 500));
  sched_.Run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], Milliseconds(21));
}

TEST_F(NetworkTest, BandwidthSerializesBackToBackPackets) {
  std::vector<SimTime> arrivals;
  network_.SetReceiver(b_, [&](Packet) { arrivals.push_back(sched_.Now()); });

  // Two 500-byte packets sent simultaneously: second waits for the first's
  // 1 ms transmission slot.
  network_.Send(MakePacket(a_, b_, 500));
  network_.Send(MakePacket(a_, b_, 500));
  sched_.Run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], Milliseconds(21));
  EXPECT_EQ(arrivals[1], Milliseconds(22));
}

TEST_F(NetworkTest, ReverseDirectionDoesNotContend) {
  std::vector<SimTime> arrivals_b, arrivals_a;
  network_.SetReceiver(b_, [&](Packet) { arrivals_b.push_back(sched_.Now()); });
  network_.SetReceiver(a_, [&](Packet) { arrivals_a.push_back(sched_.Now()); });

  network_.Send(MakePacket(a_, b_, 500));
  network_.Send(MakePacket(b_, a_, 500));
  sched_.Run();
  ASSERT_EQ(arrivals_b.size(), 1u);
  ASSERT_EQ(arrivals_a.size(), 1u);
  // Duplex: both arrive at 21 ms, no shared queueing.
  EXPECT_EQ(arrivals_b[0], Milliseconds(21));
  EXPECT_EQ(arrivals_a[0], Milliseconds(21));
}

TEST_F(NetworkTest, LoopbackUsesFixedLatency) {
  network_.SetLoopbackLatency(Microseconds(30));
  std::vector<SimTime> arrivals;
  network_.SetReceiver(a_, [&](Packet) { arrivals.push_back(sched_.Now()); });
  network_.Send(MakePacket(a_, a_, 1'000'000));  // size irrelevant on loopback
  sched_.Run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], Microseconds(30));
}

TEST_F(NetworkTest, DownLinkDropsPackets) {
  int received = 0;
  network_.SetReceiver(b_, [&](Packet) { ++received; });
  network_.SetLinkUp(a_, b_, false);
  network_.Send(MakePacket(a_, b_, 100));
  sched_.Run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(network_.StatsFor(a_, b_).dropped, 1u);

  network_.SetLinkUp(a_, b_, true);
  network_.Send(MakePacket(a_, b_, 100));
  sched_.Run();
  EXPECT_EQ(received, 1);
}

TEST_F(NetworkTest, NoLinkDropsSilently) {
  HostId c = network_.AddHost("c");
  int received = 0;
  network_.SetReceiver(c, [&](Packet) { ++received; });
  network_.Send(MakePacket(a_, c, 100));
  sched_.Run();
  EXPECT_EQ(received, 0);
}

TEST_F(NetworkTest, MissingLinkAccountsDrops) {
  // Drops over a never-connected pair are still visible in StatsFor, but
  // nothing was carried, so packets/bytes stay zero.
  HostId c = network_.AddHost("c");
  network_.SetReceiver(c, [](Packet) {});
  network_.Send(MakePacket(a_, c, 100));
  network_.Send(MakePacket(a_, c, 100));
  sched_.Run();
  const LinkStats stats = network_.StatsFor(a_, c);
  EXPECT_EQ(stats.dropped, 2u);
  EXPECT_EQ(stats.packets, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  // The reverse direction saw nothing.
  EXPECT_EQ(network_.StatsFor(c, a_).dropped, 0u);
}

TEST_F(NetworkTest, OneWayPartitionAccountsOnlyThatDirection) {
  network_.SetReceiver(a_, [](Packet) {});
  network_.SetReceiver(b_, [](Packet) {});
  network_.SetOneWayUp(b_, a_, false);  // replies dropped, requests flow
  network_.Send(MakePacket(a_, b_, 100));
  network_.Send(MakePacket(b_, a_, 100));
  network_.Send(MakePacket(b_, a_, 100));
  sched_.Run();
  EXPECT_EQ(network_.StatsFor(a_, b_).dropped, 0u);
  EXPECT_EQ(network_.StatsFor(a_, b_).packets, 1u);
  EXPECT_EQ(network_.StatsFor(b_, a_).dropped, 2u);
  EXPECT_EQ(network_.StatsFor(b_, a_).packets, 0u);
}

TEST_F(NetworkTest, DropsEmitTraceEvents) {
  trace::TraceBuffer buffer(64);
  network_.SetTracer(trace::Tracer(&buffer, sched_.NowPtr()));
  network_.SetReceiver(b_, [](Packet) {});

  network_.SetLinkUp(a_, b_, false);
  network_.Send(MakePacket(a_, b_, 100));   // downed link
  HostId c = network_.AddHost("c");
  network_.Send(MakePacket(a_, c, 250));    // missing link
  sched_.Run();

  ASSERT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer.at(0).type, trace::EventType::kNetDrop);
  EXPECT_EQ(buffer.at(0).u.net.dst_host, b_);
  EXPECT_EQ(buffer.at(1).u.net.dst_host, c);
  EXPECT_EQ(buffer.at(1).u.net.wire_size, 250u);
}

TEST_F(NetworkTest, StatsTrackPacketsAndBytes) {
  network_.SetReceiver(b_, [](Packet) {});
  network_.Send(MakePacket(a_, b_, 300));
  network_.Send(MakePacket(a_, b_, 200));
  sched_.Run();
  auto stats = network_.StatsFor(a_, b_);
  EXPECT_EQ(stats.packets, 2u);
  EXPECT_EQ(stats.bytes, 500u);
  EXPECT_EQ(network_.StatsFor(b_, a_).packets, 0u);
}

TEST_F(NetworkTest, PayloadArrivesIntact) {
  Bytes got;
  network_.SetReceiver(b_, [&](Packet p) { got = std::move(p.payload); });
  Packet p = MakePacket(a_, b_, 64);
  p.payload = {1, 2, 3, 4};
  network_.Send(std::move(p));
  sched_.Run();
  EXPECT_EQ(got, (Bytes{1, 2, 3, 4}));
}

TEST_F(NetworkTest, HostNames) {
  EXPECT_EQ(network_.HostName(a_), "a");
  EXPECT_EQ(network_.HostName(b_), "b");
  EXPECT_EQ(network_.HostCount(), 2u);
}

// Latency sweep mirroring the paper's Figure 5 setup: delivery time scales
// with configured RTT.
class LatencySweep : public ::testing::TestWithParam<int> {};

TEST_P(LatencySweep, OneWayLatencyHonored) {
  sim::Scheduler sched;
  Network network(sched);
  HostId a = network.AddHost("a");
  HostId b = network.AddHost("b");
  const Duration one_way = Microseconds(GetParam() * 500);  // RTT/2
  network.Connect(a, b, LinkConfig{one_way, 1'000'000'000});

  SimTime arrival = -1;
  network.SetReceiver(b, [&](Packet) { arrival = sched.Now(); });
  Packet p;
  p.src = {a, 1};
  p.dst = {b, 1};
  p.wire_size = 125;  // 1 us at 1 Gbps
  network.Send(std::move(p));
  sched.Run();
  EXPECT_EQ(arrival, one_way + Microseconds(1));
}

INSTANTIATE_TEST_SUITE_P(PaperRtts, LatencySweep,
                         ::testing::Values(1, 5, 10, 20, 40));  // ms RTT

}  // namespace
}  // namespace gvfs::net
