// End-to-end tests for the delegation/callback strong-consistency model
// (§4.3): grants, recalls, the write-back block-list optimization, renewal,
// expiry, and crash recovery with grace periods.
#include <gtest/gtest.h>

#include "test_util.h"
#include "trace_oracle.h"
#include "workloads/testbed.h"

namespace gvfs::workloads {
namespace {

using kclient::MountOptions;
using kclient::OpenFlags;
using nfs3::Status;
using proxy::CacheMode;
using proxy::ConsistencyModel;
using proxy::SessionConfig;
using testutil::RunTask;

constexpr OpenFlags kRead{};
constexpr OpenFlags kWrite{.read = true, .write = true};
constexpr OpenFlags kCreateWrite{.read = true, .write = true, .create = true};

SessionConfig CbConfig() {
  SessionConfig config;
  config.model = ConsistencyModel::kDelegationCallback;
  config.cache_mode = CacheMode::kWriteBack;
  config.deleg_expiry = Seconds(600);
  config.deleg_renew = Seconds(480);
  config.wb_flush_period = 0;  // flush driven by recalls/shutdown
  return config;
}

/// The paper's strong-consistency session disables the kernel attribute
/// cache so every check reaches the proxy (§5.1.1, GVFS2).
MountOptions NoacKernel() {
  MountOptions options;
  options.noac = true;
  return options;
}

class DelegationTest : public ::testing::Test {
 protected:
  DelegationTest() {
    bed_.AddWanClient();
    bed_.AddWanClient();
    bed_.EnableTracing();
  }

  // Every delegation scenario doubles as a protocol-invariant check over
  // its full event history (trace_oracle.h).
  void TearDown() override { testutil::ExpectTraceClean(bed_); }

  sim::Task<void> Advance(Duration d) { co_await sim::Sleep(bed_.sched(), d); }

  Testbed bed_;
};

TEST_F(DelegationTest, ReadDelegationFiltersConsistencyChecks) {
  auto& session = bed_.CreateSession(CbConfig(), {0}, NoacKernel());
  ASSERT_TRUE(bed_.fs().Create(bed_.fs().root(), "f", 0644).has_value());

  (void)RunTask(bed_.sched(), session.mount(0).Stat("/f"));
  const auto wan = session.stats->Calls("GETATTR") + session.stats->Calls("LOOKUP");

  // noac kernel: every stat hits the proxy; the read delegation answers all
  // of them locally with zero WAN traffic.
  for (int i = 0; i < 50; ++i) {
    (void)RunTask(bed_.sched(), session.mount(0).Stat("/f"));
  }
  EXPECT_EQ(session.stats->Calls("GETATTR") + session.stats->Calls("LOOKUP"), wan);
  EXPECT_GT(session.proxy(0).stats().served_locally, 40u);
}

TEST_F(DelegationTest, RemoteWriteRecallsReadDelegation) {
  auto& session = bed_.CreateSession(CbConfig(), {0, 1}, NoacKernel());
  auto& a = session.mount(0);
  auto& b = session.mount(1);

  // a creates and writes; b reads and holds a read delegation.
  auto fd = RunTask(bed_.sched(), a.Open("/d", kCreateWrite));
  (void)RunTask(bed_.sched(), a.Write(*fd, 0, Bytes(10, 1)));
  (void)RunTask(bed_.sched(), a.Close(*fd));
  (void)RunTask(bed_.sched(), session.proxy(0).FlushAll());

  auto fd_b = RunTask(bed_.sched(), b.Open("/d", kRead));
  auto first = RunTask(bed_.sched(), b.Read(*fd_b, 0, 10));
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ((*first)[0], 1);

  // a rewrites: the proxy server recalls b's read delegation *before* the
  // write proceeds, so b's very next read sees fresh data — no staleness
  // window at all (strong consistency).
  auto fd2 = RunTask(bed_.sched(), a.Open("/d", kWrite));
  (void)RunTask(bed_.sched(), a.Write(*fd2, 0, Bytes(10, 2)));
  (void)RunTask(bed_.sched(), a.Close(*fd2));
  (void)RunTask(bed_.sched(), session.proxy(0).FlushAll());

  auto second = RunTask(bed_.sched(), b.Read(*fd_b, 0, 10));
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ((*second)[0], 2);
  EXPECT_GT(session.server->stats().callbacks_sent, 0u);
  // a's write recalled b's read delegation (callback to b's proxy).
  EXPECT_GT(session.proxy(1).stats().callbacks_received, 0u);
}

TEST_F(DelegationTest, WriteDelegationAbsorbsWritesUntilRecalled) {
  auto& session = bed_.CreateSession(CbConfig(), {0, 1}, NoacKernel());
  auto& a = session.mount(0);
  auto& b = session.mount(1);

  // Sole opener: a acquires a write delegation, so its flushes stay local.
  auto fd = RunTask(bed_.sched(), a.Open("/w", kCreateWrite));
  (void)RunTask(bed_.sched(), a.Write(*fd, 0, Bytes(100, 7)));
  (void)RunTask(bed_.sched(), a.Close(*fd));
  // The first kernel flush forwards one WRITE (acquiring the delegation);
  // subsequent rewrites are absorbed locally.
  const auto writes_after_first = session.stats->Calls("WRITE");
  for (int i = 0; i < 5; ++i) {
    auto fd2 = RunTask(bed_.sched(), a.Open("/w", kWrite));
    (void)RunTask(bed_.sched(), a.Write(*fd2, 0, Bytes(100, static_cast<std::uint8_t>(i))));
    (void)RunTask(bed_.sched(), a.Close(*fd2));
  }
  EXPECT_EQ(session.stats->Calls("WRITE"), writes_after_first);

  // b reads: recall forces a's dirty data back; b sees the latest bytes.
  auto fd_b = RunTask(bed_.sched(), b.Open("/w", kRead));
  ASSERT_TRUE(fd_b.has_value());
  auto data = RunTask(bed_.sched(), b.Read(*fd_b, 0, 100));
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ((*data)[0], 4);  // last write wins
  EXPECT_GT(session.server->stats().recalls_write, 0u);
}

TEST_F(DelegationTest, CreateRemoveVisibleImmediately) {
  // The lock-file scenario: strong consistency means a release is visible
  // to other clients at once.
  auto& session = bed_.CreateSession(CbConfig(), {0, 1}, NoacKernel());
  auto& a = session.mount(0);
  auto& b = session.mount(1);

  // b polls for the lock file; negative lookups are served locally under
  // the directory's read delegation.
  EXPECT_FALSE(*RunTask(bed_.sched(), b.Exists("/lock")));
  EXPECT_FALSE(*RunTask(bed_.sched(), b.Exists("/lock")));

  // a takes the lock.
  auto fd = RunTask(bed_.sched(), a.Open("/lock", kCreateWrite));
  (void)RunTask(bed_.sched(), a.Close(*fd));
  EXPECT_TRUE(*RunTask(bed_.sched(), b.Exists("/lock")));  // immediately visible

  // a releases.
  ASSERT_TRUE(RunTask(bed_.sched(), a.Unlink("/lock")).has_value());
  EXPECT_FALSE(*RunTask(bed_.sched(), b.Exists("/lock")));  // immediately gone
}

TEST_F(DelegationTest, NegativeLookupsServedLocally) {
  auto& session = bed_.CreateSession(CbConfig(), {0}, NoacKernel());
  auto& a = session.mount(0);

  EXPECT_FALSE(*RunTask(bed_.sched(), a.Exists("/nope")));
  const auto wan = session.stats->TotalCalls();
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(*RunTask(bed_.sched(), a.Exists("/nope")));
  }
  EXPECT_EQ(session.stats->TotalCalls(), wan);  // all local
}

TEST_F(DelegationTest, BlockListOptimizationServesContendedBlockFirst) {
  SessionConfig config = CbConfig();
  config.dirty_threshold_blocks = 2;  // force the block-list path
  auto& session = bed_.CreateSession(config, {0, 1}, NoacKernel());
  auto& a = session.mount(0);
  auto& b = session.mount(1);

  // a dirties 6 blocks (under its write delegation).
  auto fd = RunTask(bed_.sched(), a.Open("/big", kCreateWrite));
  const std::size_t block = 32 * 1024;
  Bytes payload(block, 1);
  for (int i = 0; i < 6; ++i) {
    payload.assign(block, static_cast<std::uint8_t>(i + 1));
    (void)RunTask(bed_.sched(), a.Write(*fd, i * block, payload));
  }
  (void)RunTask(bed_.sched(), a.Close(*fd));
  // The very first WRITE went upstream (acquiring the write delegation);
  // the rest were absorbed into the disk cache.
  ASSERT_GE(session.proxy(0).cache().DirtyBlockCount(
                nfs3::Fh{1, *bed_.fs().ResolvePath("/big")}),
            5u);

  // b reads block 3: the callback returns a block list, the wanted block is
  // written back synchronously, and b's read completes with correct data.
  auto fd_b = RunTask(bed_.sched(), b.Open("/big", kRead));
  ASSERT_TRUE(fd_b.has_value());
  auto data = RunTask(bed_.sched(), b.Read(*fd_b, 3 * block, block));
  ASSERT_TRUE(data.has_value());
  ASSERT_FALSE(data->empty());
  EXPECT_EQ((*data)[0], 4);

  // The asynchronous remainder flush eventually drains everything.
  (void)RunTask(bed_.sched(), Advance(Seconds(30)));
  auto ino = bed_.fs().ResolvePath("/big");
  auto server_data = bed_.fs().Read(*ino, 5 * block, block);
  ASSERT_TRUE(server_data.has_value());
  EXPECT_EQ(server_data->data[0], 6);
}

TEST_F(DelegationTest, DelegationExpiresWithoutRenewal) {
  SessionConfig config = CbConfig();
  config.deleg_expiry = Seconds(60);
  config.deleg_renew = Seconds(48);
  auto& session = bed_.CreateSession(config, {0}, NoacKernel());
  ASSERT_TRUE(bed_.fs().Create(bed_.fs().root(), "f", 0644).has_value());

  (void)RunTask(bed_.sched(), session.mount(0).Stat("/f"));
  const auto wan = session.stats->Calls("GETATTR");
  // Within the renewal window: local.
  (void)RunTask(bed_.sched(), Advance(Seconds(30)));
  (void)RunTask(bed_.sched(), session.mount(0).Stat("/f"));
  EXPECT_EQ(session.stats->Calls("GETATTR"), wan);
  // Past the renewal period the next access bypasses the cache (renewal).
  (void)RunTask(bed_.sched(), Advance(Seconds(30)));
  (void)RunTask(bed_.sched(), session.mount(0).Stat("/f"));
  EXPECT_GT(session.stats->Calls("GETATTR"), wan);
}

TEST_F(DelegationTest, ServerCrashRecoveryRebuildsState) {
  auto& session = bed_.CreateSession(CbConfig(), {0, 1}, NoacKernel());
  auto& a = session.mount(0);
  auto& b = session.mount(1);

  // a holds a write delegation with dirty data (the first write acquires
  // the delegation; the rewrite is absorbed and stays dirty).
  auto fd = RunTask(bed_.sched(), a.Open("/wal", kCreateWrite));
  (void)RunTask(bed_.sched(), a.Write(*fd, 0, Bytes(64, 1)));
  (void)RunTask(bed_.sched(), a.Close(*fd));
  auto fd_r = RunTask(bed_.sched(), a.Open("/wal", kWrite));
  (void)RunTask(bed_.sched(), a.Write(*fd_r, 0, Bytes(64, 9)));
  (void)RunTask(bed_.sched(), a.Close(*fd_r));
  EXPECT_GE(session.proxy(0).cache().FilesWithDirtyData().size(), 1u);

  session.server->Crash();
  (void)RunTask(bed_.sched(), session.server->Recover());
  EXPECT_FALSE(session.server->InGrace());

  // b reads the file: the rebuilt open-file table knows a holds dirty data,
  // recalls it, and b sees the bytes.
  auto fd_b = RunTask(bed_.sched(), b.Open("/wal", kRead));
  ASSERT_TRUE(fd_b.has_value());
  auto data = RunTask(bed_.sched(), b.Read(*fd_b, 0, 64));
  ASSERT_TRUE(data.has_value());
  ASSERT_FALSE(data->empty());
  EXPECT_EQ((*data)[0], 9);
}

TEST_F(DelegationTest, ClientCrashRecoveryKeepsDirtyData) {
  auto& session = bed_.CreateSession(CbConfig(), {0, 1}, NoacKernel());
  auto& a = session.mount(0);
  auto& b = session.mount(1);

  auto fd = RunTask(bed_.sched(), a.Open("/journal", kCreateWrite));
  (void)RunTask(bed_.sched(), a.Write(*fd, 0, Bytes(64, 4)));
  (void)RunTask(bed_.sched(), a.Close(*fd));
  auto fd_r = RunTask(bed_.sched(), a.Open("/journal", kWrite));
  (void)RunTask(bed_.sched(), a.Write(*fd_r, 0, Bytes(64, 5)));
  (void)RunTask(bed_.sched(), a.Close(*fd_r));

  session.proxy(0).Crash();
  session.mount(0).DropCaches();
  (void)RunTask(bed_.sched(), session.proxy(0).Recover());
  EXPECT_TRUE(session.proxy(0).corrupted_files().empty());

  // The dirty data survived the crash; after a full flush b reads it.
  (void)RunTask(bed_.sched(), session.proxy(0).FlushAll());
  auto fd_b = RunTask(bed_.sched(), b.Open("/journal", kRead));
  auto data = RunTask(bed_.sched(), b.Read(*fd_b, 0, 64));
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ((*data)[0], 5);
}

TEST_F(DelegationTest, ClientCrashConflictMarksDataCorrupted) {
  auto& session = bed_.CreateSession(CbConfig(), {0, 1}, NoacKernel());
  auto& a = session.mount(0);
  auto& b = session.mount(1);

  // a buffers dirty data under a write delegation (second write absorbed)...
  auto fd = RunTask(bed_.sched(), a.Open("/conflict", kCreateWrite));
  (void)RunTask(bed_.sched(), a.Write(*fd, 0, Bytes(64, 4)));
  (void)RunTask(bed_.sched(), a.Close(*fd));
  auto fd_r = RunTask(bed_.sched(), a.Open("/conflict", kWrite));
  (void)RunTask(bed_.sched(), a.Write(*fd_r, 0, Bytes(64, 5)));
  (void)RunTask(bed_.sched(), a.Close(*fd_r));
  ASSERT_GE(session.proxy(0).cache().FilesWithDirtyData().size(), 1u);
  session.proxy(0).Crash();

  // ...and while a is down, b modifies the file (a's delegation holder is
  // unreachable; the recall times out and the server proceeds).
  auto fd_b = RunTask(bed_.sched(), b.Open("/conflict", kWrite));
  ASSERT_TRUE(fd_b.has_value());
  (void)RunTask(bed_.sched(), b.Write(*fd_b, 0, Bytes(64, 6)));
  (void)RunTask(bed_.sched(), b.Close(*fd_b));
  (void)RunTask(bed_.sched(), session.proxy(1).FlushAll());

  (void)RunTask(bed_.sched(), session.proxy(0).Recover());
  // a detects the conflict (server mtime advanced) and discards its dirty
  // data as corrupted (§4.3.4).
  EXPECT_EQ(session.proxy(0).corrupted_files().size(), 1u);

  auto ino = bed_.fs().ResolvePath("/conflict");
  auto data = bed_.fs().Read(*ino, 0, 64);
  EXPECT_EQ(data->data[0], 6);  // b's write was not clobbered
}

TEST_F(DelegationTest, ConcurrentReadersBothGetDelegations) {
  auto& session = bed_.CreateSession(CbConfig(), {0, 1}, NoacKernel());
  ASSERT_TRUE(bed_.fs().Create(bed_.fs().root(), "shared", 0644).has_value());

  (void)RunTask(bed_.sched(), session.mount(0).Stat("/shared"));
  (void)RunTask(bed_.sched(), session.mount(1).Stat("/shared"));
  const auto wan = session.stats->Calls("GETATTR");
  // Both hold read delegations simultaneously: all further checks local.
  for (int i = 0; i < 10; ++i) {
    (void)RunTask(bed_.sched(), session.mount(0).Stat("/shared"));
    (void)RunTask(bed_.sched(), session.mount(1).Stat("/shared"));
  }
  EXPECT_EQ(session.stats->Calls("GETATTR"), wan);
}

}  // namespace
}  // namespace gvfs::workloads
